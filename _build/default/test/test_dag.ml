(* Tests for the Par cost DSL and the execution-DAG builder. *)

let test_par_leaf () =
  Alcotest.(check int) "work" 5 (Par.work (Par.leaf 5));
  Alcotest.(check int) "span" 5 (Par.span (Par.leaf 5));
  Alcotest.(check int) "clamped" 1 (Par.work (Par.leaf 0))

let test_par_series () =
  let p = Par.series [ Par.leaf 2; Par.leaf 3 ] in
  Alcotest.(check int) "work" 5 (Par.work p);
  Alcotest.(check int) "span" 5 (Par.span p)

let test_par_branch () =
  let p = Par.branch [ Par.leaf 4; Par.leaf 6 ] in
  (* One fork + one join node around the two legs. *)
  Alcotest.(check int) "work" 12 (Par.work p);
  Alcotest.(check int) "span" 8 (Par.span p)

let test_par_balanced_shape () =
  let p = Par.balanced ~leaf_cost:(fun _ -> 1) 8 in
  (* 8 leaves + 7 forks + 7 joins. *)
  Alcotest.(check int) "work" 22 (Par.work p);
  (* Balanced over 8: 3 fork levels + leaf + 3 join levels. *)
  Alcotest.(check int) "span" 7 (Par.span p)

let test_par_balanced_leaves () =
  let p = Par.balanced ~leaf_cost:(fun i -> i + 1) 5 in
  Alcotest.(check int) "leaves" 5 (Par.leaves p)

let test_par_invalid () =
  Alcotest.check_raises "empty series" (Invalid_argument "Par.series: empty")
    (fun () -> ignore (Par.series []));
  Alcotest.check_raises "empty branch" (Invalid_argument "Par.branch: empty")
    (fun () -> ignore (Par.branch []))

let build_diamond () =
  let b = Dag.Build.create () in
  let top = Dag.Build.single b Dag.Core in
  let left = Dag.Build.single b ~cost:3 Dag.Core in
  let right = Dag.Build.single b ~cost:5 Dag.Core in
  let bottom = Dag.Build.single b Dag.Core in
  Dag.Build.link b top.Dag.Build.entry left.Dag.Build.entry;
  Dag.Build.link b top.Dag.Build.entry right.Dag.Build.entry;
  Dag.Build.link b left.Dag.Build.entry bottom.Dag.Build.entry;
  Dag.Build.link b right.Dag.Build.entry bottom.Dag.Build.entry;
  Dag.Build.finish b
    { Dag.Build.entry = top.Dag.Build.entry; exit_ = bottom.Dag.Build.entry }

let test_dag_diamond () =
  let d = build_diamond () in
  Alcotest.(check int) "size" 4 (Dag.size d);
  Alcotest.(check int) "work" 10 (Dag.work d);
  Alcotest.(check int) "span" 7 (Dag.span d)

let test_dag_series () =
  let b = Dag.Build.create () in
  let f =
    Dag.Build.in_series b
      [ Dag.Build.single b ~cost:2 Dag.Core; Dag.Build.single b ~cost:3 Dag.Core ]
  in
  let d = Dag.Build.finish b f in
  Alcotest.(check int) "work" 5 (Dag.work d);
  Alcotest.(check int) "span" 5 (Dag.span d)

let test_dag_parallel_matches_par () =
  let b = Dag.Build.create () in
  let f =
    Dag.Build.in_parallel b
      [ Dag.Build.single b ~cost:4 Dag.Core; Dag.Build.single b ~cost:6 Dag.Core ]
  in
  let d = Dag.Build.finish b f in
  let p = Par.branch [ Par.leaf 4; Par.leaf 6 ] in
  Alcotest.(check int) "work" (Par.work p) (Dag.work d);
  Alcotest.(check int) "span" (Par.span p) (Dag.span d)

let test_dag_ds_metrics () =
  let b = Dag.Build.create () in
  let chain i =
    Dag.Build.in_series b
      [ Dag.Build.single b (Dag.Ds (2 * i)); Dag.Build.single b (Dag.Ds ((2 * i) + 1)) ]
  in
  let body = Dag.Build.parallel_for b 3 chain in
  let entry = Dag.Build.single b Dag.Core in
  let exit_ = Dag.Build.single b Dag.Core in
  let d = Dag.Build.finish b (Dag.Build.in_series b [ entry; body; exit_ ]) in
  Alcotest.(check int) "n" 6 (Dag.ds_count d);
  Alcotest.(check int) "m" 2 (Dag.ds_depth d)

let test_dag_validate_catches_cycle () =
  (* Construct an invalid dag by hand: a 2-cycle. *)
  let b = Dag.Build.create () in
  let x = Dag.Build.single b Dag.Core in
  let y = Dag.Build.single b Dag.Core in
  Dag.Build.link b x.Dag.Build.entry y.Dag.Build.entry;
  Dag.Build.link b y.Dag.Build.entry x.Dag.Build.entry;
  (match
     Dag.Build.finish b { Dag.Build.entry = x.Dag.Build.entry; exit_ = y.Dag.Build.entry }
   with
  | _ -> Alcotest.fail "expected validate failure"
  | exception Failure _ -> ())

let test_parallel_for_singleton () =
  let b = Dag.Build.create () in
  let f = Dag.Build.parallel_for b 1 (fun _ -> Dag.Build.single b ~cost:7 Dag.Core) in
  let d = Dag.Build.finish b f in
  Alcotest.(check int) "no forks for singleton" 1 (Dag.size d);
  Alcotest.(check int) "work" 7 (Dag.work d)

let test_to_dot () =
  let b = Dag.Build.create () in
  let f =
    Dag.Build.in_series b
      [ Dag.Build.single b Dag.Core;
        Dag.Build.single b (Dag.Ds 3);
        Dag.Build.single b Dag.Core ]
  in
  let d = Dag.Build.finish b f in
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Dag.to_dot ~name:"test" fmt d;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has digraph" true
    (String.length s > 0 && String.sub s 0 12 = "digraph test");
  Alcotest.(check bool) "mentions op3" true
    (String.length s > 0
    &&
    let re = Str.regexp_string "op3" in
    match Str.search_forward re s 0 with _ -> true | exception Not_found -> false)

(* Property: lowering a random Par expression yields a DAG whose work and
   span match Par.work/Par.span, and that validates. *)

let par_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then map Par.leaf (1 -- 5)
          else
            frequency
              [
                (2, map Par.leaf (1 -- 5));
                ( 3,
                  let* k = 2 -- 4 in
                  map Par.series (list_repeat k (self (n / k))) );
                ( 3,
                  let* k = 2 -- 4 in
                  map Par.branch (list_repeat k (self (n / k))) );
              ])
        (min n 30))

let arbitrary_par = QCheck.make ~print:(Format.asprintf "%a" Par.pp) par_gen

let prop_lowering_preserves_metrics =
  QCheck.Test.make ~name:"of_par preserves work and span" ~count:200 arbitrary_par
    (fun p ->
      let b = Dag.Build.create () in
      let f = Dag.Build.of_par b p in
      let d = Dag.Build.finish b f in
      Dag.work d = Par.work p && Dag.span d = Par.span p)

let prop_span_le_work =
  QCheck.Test.make ~name:"span <= work" ~count:200 arbitrary_par (fun p ->
      Par.span p <= Par.work p)

let prop_topo_is_permutation =
  QCheck.Test.make ~name:"topological order is a permutation" ~count:100 arbitrary_par
    (fun p ->
      let b = Dag.Build.create () in
      let f = Dag.Build.of_par b p in
      let d = Dag.Build.finish b f in
      let order = Dag.topological_order d in
      let sorted = Array.copy order in
      Array.sort compare sorted;
      sorted = Array.init (Dag.size d) Fun.id)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lowering_preserves_metrics; prop_span_le_work; prop_topo_is_permutation ]

let () =
  Alcotest.run "dag"
    [
      ( "par",
        [
          Alcotest.test_case "leaf" `Quick test_par_leaf;
          Alcotest.test_case "series" `Quick test_par_series;
          Alcotest.test_case "branch" `Quick test_par_branch;
          Alcotest.test_case "balanced shape" `Quick test_par_balanced_shape;
          Alcotest.test_case "balanced leaves" `Quick test_par_balanced_leaves;
          Alcotest.test_case "invalid" `Quick test_par_invalid;
        ] );
      ( "build",
        [
          Alcotest.test_case "diamond" `Quick test_dag_diamond;
          Alcotest.test_case "series" `Quick test_dag_series;
          Alcotest.test_case "parallel matches Par" `Quick test_dag_parallel_matches_par;
          Alcotest.test_case "ds metrics" `Quick test_dag_ds_metrics;
          Alcotest.test_case "validate catches cycle" `Quick test_dag_validate_catches_cycle;
          Alcotest.test_case "singleton parallel_for" `Quick test_parallel_for_singleton;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
        ] );
      ("properties", qcheck_cases);
    ]
