(* Unit and property tests for the util library. *)

let test_rng_deterministic () =
  let a = Util.Rng.create ~seed:7 in
  let b = Util.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next64 a) (Util.Rng.next64 b)
  done

let test_rng_seeds_differ () =
  let a = Util.Rng.create ~seed:7 in
  let b = Util.Rng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.next64 a = Util.Rng.next64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_streams_independent () =
  let a = Util.Rng.stream ~seed:1 ~index:0 in
  let b = Util.Rng.stream ~seed:1 ~index:1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.next64 a = Util.Rng.next64 b then incr same
  done;
  Alcotest.(check bool) "worker streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Util.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Util.Rng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int r 0))

let test_rng_float_bounds () =
  let r = Util.Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_shuffle_permutation () =
  let r = Util.Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Util.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_stats_summary () =
  let s = Util.Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Util.Stats.mean;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.Util.Stats.median;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Util.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Util.Stats.max;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Util.Stats.stddev

let test_stats_single () =
  let s = Util.Stats.summarize [| 42.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 42.0 s.Util.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Util.Stats.stddev

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Util.Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 30.0 (Util.Stats.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Util.Stats.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "p25" 20.0 (Util.Stats.percentile xs 0.25)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Util.Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_prefix_inclusive () =
  Alcotest.(check (array int)) "inclusive" [| 1; 3; 6; 10 |]
    (Util.Prefix_sum.inclusive [| 1; 2; 3; 4 |])

let test_prefix_exclusive () =
  Alcotest.(check (array int)) "exclusive" [| 0; 1; 3; 6 |]
    (Util.Prefix_sum.exclusive [| 1; 2; 3; 4 |])

let test_prefix_empty () =
  Alcotest.(check (array int)) "empty inclusive" [||] (Util.Prefix_sum.inclusive [||]);
  Alcotest.(check (array int)) "empty exclusive" [||] (Util.Prefix_sum.exclusive [||])

let test_prefix_inplace () =
  let a = [| 5; -2; 7 |] in
  Util.Prefix_sum.inclusive_inplace a;
  Alcotest.(check (array int)) "inplace" [| 5; 3; 10 |] a

let test_compact () =
  Alcotest.(check (array int)) "compact" [| 1; 2; 3 |]
    (Util.Prefix_sum.compact [| None; Some 1; None; Some 2; Some 3; None |]);
  Alcotest.(check (array int)) "compact empty" [||]
    (Util.Prefix_sum.compact [| None; None |]);
  Alcotest.(check (array int)) "compact all" [| 9; 8 |]
    (Util.Prefix_sum.compact [| Some 9; Some 8 |])

(* Property tests. *)

let prop_prefix_sums_correct =
  QCheck.Test.make ~name:"prefix sums match naive"
    QCheck.(list small_signed_int)
    (fun l ->
      let a = Array.of_list l in
      let inc = Util.Prefix_sum.inclusive a in
      let ok = ref true in
      let acc = ref 0 in
      Array.iteri
        (fun i x ->
          acc := !acc + x;
          if inc.(i) <> !acc then ok := false)
        a;
      !ok)

let prop_exclusive_shifts_inclusive =
  QCheck.Test.make ~name:"exclusive = inclusive shifted"
    QCheck.(list small_signed_int)
    (fun l ->
      let a = Array.of_list l in
      let inc = Util.Prefix_sum.inclusive a in
      let exc = Util.Prefix_sum.exclusive a in
      let ok = ref true in
      Array.iteri (fun i x -> if exc.(i) + x <> inc.(i) then ok := false) a;
      !ok)

let prop_compact_preserves_some =
  QCheck.Test.make ~name:"compact keeps Some entries in order"
    QCheck.(list (option small_nat))
    (fun l ->
      let a = Array.of_list l in
      let packed = Util.Prefix_sum.compact a in
      Array.to_list packed = List.filter_map Fun.id l)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in q"
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_inclusive 100.0))
              (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (l, (q1, q2)) ->
      QCheck.assume (l <> []);
      let xs = Array.of_list l in
      let lo = min q1 q2 and hi = max q1 q2 in
      Util.Stats.percentile xs lo <= Util.Stats.percentile xs hi +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_prefix_sums_correct;
      prop_exclusive_shifts_inclusive;
      prop_compact_preserves_some;
      prop_percentile_monotone ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "streams independent" `Quick test_rng_streams_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
        ] );
      ( "prefix_sum",
        [
          Alcotest.test_case "inclusive" `Quick test_prefix_inclusive;
          Alcotest.test_case "exclusive" `Quick test_prefix_exclusive;
          Alcotest.test_case "empty" `Quick test_prefix_empty;
          Alcotest.test_case "inplace" `Quick test_prefix_inplace;
          Alcotest.test_case "compact" `Quick test_compact;
        ] );
      ("properties", qcheck_cases);
    ]
