(* Correctness tests for the batched data structures, oracle-checked
   against simple sequential references. *)

module C = Batched.Counter
module Sk = Batched.Skiplist
module T23 = Batched.Two_three
module Pq = Batched.Pqueue
module St = Batched.Stack

(* ---------- counter ---------- *)

let test_counter_batch_prefix () =
  let c = C.create ~init:10 () in
  let ops = [| C.op 1; C.op 2; C.op 3 |] in
  C.run_batch c ops;
  Alcotest.(check int) "r0" 11 ops.(0).C.result;
  Alcotest.(check int) "r1" 13 ops.(1).C.result;
  Alcotest.(check int) "r2" 16 ops.(2).C.result;
  Alcotest.(check int) "value" 16 (C.value c)

let test_counter_negative () =
  let c = C.create () in
  let ops = [| C.op 5; C.op (-3); C.op (-10) |] in
  C.run_batch c ops;
  Alcotest.(check int) "value" (-8) (C.value c);
  Alcotest.(check int) "r1" 2 ops.(1).C.result

let test_counter_empty_batch () =
  let c = C.create ~init:4 () in
  C.run_batch c [||];
  Alcotest.(check int) "unchanged" 4 (C.value c)

let test_counter_seq_matches_batch () =
  let a = C.create () and b = C.create () in
  let amounts = [ 3; -1; 7; 0; 2 ] in
  List.iter (fun x -> ignore (C.increment_seq a x)) amounts;
  C.run_batch b (Array.of_list (List.map C.op amounts));
  Alcotest.(check int) "same value" (C.value a) (C.value b)

let prop_counter_linearizable =
  QCheck.Test.make ~name:"counter batch = sequential prefix"
    QCheck.(list small_signed_int)
    (fun amounts ->
      let c = C.create () in
      let ops = Array.of_list (List.map C.op amounts) in
      C.run_batch c ops;
      let acc = ref 0 in
      Array.for_all
        (fun (o : C.op) ->
          acc := !acc + o.C.amount;
          o.C.result = !acc)
        ops
      && C.value c = !acc)

(* ---------- stack ---------- *)

let test_stack_push_pop () =
  let s = St.create () in
  St.run_batch s [| St.push 1; St.push 2; St.push 3 |];
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] (St.to_list s);
  let p1 = St.pop () and p2 = St.pop () in
  St.run_batch s [| p1; p2 |];
  (match p1, p2 with
  | St.Pop r1, St.Pop r2 ->
      Alcotest.(check (option int)) "first pop" (Some 3) r1.St.popped;
      Alcotest.(check (option int)) "second pop" (Some 2) r2.St.popped
  | _ -> Alcotest.fail "expected pops");
  Alcotest.(check int) "size" 1 (St.size s)

let test_stack_pop_empty () =
  let s = St.create () in
  let p = St.pop () in
  St.run_batch s [| p |];
  (match p with
  | St.Pop r -> Alcotest.(check (option int)) "none" None r.St.popped
  | _ -> assert false)

let test_stack_mixed_batch_phases () =
  (* Pushes take effect before pops within a batch, per the paper. *)
  let s = St.create () in
  let p = St.pop () in
  St.run_batch s [| p; St.push 9 |];
  (match p with
  | St.Pop r -> Alcotest.(check (option int)) "pop sees the batch push" (Some 9) r.St.popped
  | _ -> assert false);
  Alcotest.(check int) "empty after" 0 (St.size s)

let test_stack_doubling () =
  let s = St.create () in
  let cap0 = St.capacity s in
  St.run_batch s (Array.init (4 * cap0) (fun i -> St.push i));
  Alcotest.(check bool) "grew" true (St.capacity s >= 4 * cap0);
  Alcotest.(check int) "size" (4 * cap0) (St.size s)

let test_stack_shrinking () =
  let s = St.create () in
  St.run_batch s (Array.init 64 (fun i -> St.push i));
  let big = St.capacity s in
  St.run_batch s (Array.init 62 (fun _ -> St.pop ()));
  Alcotest.(check bool) "shrank" true (St.capacity s < big)

let prop_stack_matches_list_model =
  QCheck.Test.make ~name:"stack batches match a list model" ~count:200
    QCheck.(
      list_of_size Gen.(0 -- 8)
        (list_of_size Gen.(0 -- 16) (option small_nat)))
    (fun batches ->
      (* Some v = push v, None = pop. *)
      let s = St.create () in
      let model = ref [] in
      List.for_all
        (fun batch ->
          let ops =
            List.map (function Some v -> St.push v | None -> St.pop ()) batch
          in
          St.run_batch s (Array.of_list ops);
          (* Model: all pushes first, then pops, LIFO. *)
          List.iter (function Some v -> model := v :: !model | None -> ()) batch;
          let expected =
            List.filter_map
              (function
                | Some _ -> None
                | None -> begin
                    match !model with
                    | [] -> Some None
                    | x :: rest ->
                        model := rest;
                        Some (Some x)
                  end)
              batch
          in
          let actual =
            List.filter_map
              (function St.Push _ -> None | St.Pop r -> Some r.St.popped)
              ops
          in
          actual = expected && St.to_list s = List.rev !model)
        batches)

(* ---------- fifo queue ---------- *)

module Fq = Batched.Fifo

let test_fifo_order () =
  let q = Fq.create () in
  Fq.run_batch q [| Fq.enqueue 1; Fq.enqueue 2; Fq.enqueue 3 |];
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] (Fq.to_list q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Fq.dequeue_seq q);
  Alcotest.(check (option int)) "fifo" (Some 2) (Fq.dequeue_seq q);
  Alcotest.(check int) "size" 1 (Fq.size q);
  Fq.check_invariants q

let test_fifo_phases () =
  (* Enqueues land before dequeues within a batch. *)
  let q = Fq.create () in
  let d = Fq.dequeue () in
  Fq.run_batch q [| d; Fq.enqueue 7 |];
  (match d with
  | Fq.Dequeue r -> Alcotest.(check (option int)) "sees batch enqueue" (Some 7) r.Fq.dequeued
  | _ -> assert false);
  Alcotest.(check int) "empty" 0 (Fq.size q)

let test_fifo_empty_dequeue () =
  let q = Fq.create () in
  Alcotest.(check (option int)) "none" None (Fq.dequeue_seq q)

let test_fifo_growth_wraparound () =
  let q = Fq.create () in
  (* Interleave to force head wraparound across rebuilds. *)
  for i = 0 to 499 do
    Fq.enqueue_seq q i;
    if i mod 3 = 0 then ignore (Fq.dequeue_seq q)
  done;
  Fq.check_invariants q;
  let l = Fq.to_list q in
  Alcotest.(check int) "size" (Fq.size q) (List.length l);
  (* Remaining elements ascend (FIFO order preserved). *)
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "order preserved" true (ascending l)

let prop_fifo_matches_queue_model =
  QCheck.Test.make ~name:"fifo batches match a Queue model" ~count:200
    QCheck.(
      list_of_size Gen.(0 -- 8)
        (list_of_size Gen.(0 -- 16) (option small_nat)))
    (fun batches ->
      (* Some v = enqueue v, None = dequeue. *)
      let q = Fq.create () in
      let model = Queue.create () in
      List.for_all
        (fun batch ->
          let ops =
            List.map (function Some v -> Fq.enqueue v | None -> Fq.dequeue ()) batch
          in
          Fq.run_batch q (Array.of_list ops);
          List.iter (function Some v -> Queue.add v model | None -> ()) batch;
          let expected =
            List.filter_map
              (function
                | Some _ -> None
                | None -> Some (Queue.take_opt model))
              batch
          in
          let actual =
            List.filter_map
              (function Fq.Enqueue _ -> None | Fq.Dequeue r -> Some r.Fq.dequeued)
              ops
          in
          Fq.check_invariants q;
          actual = expected && Fq.to_list q = List.of_seq (Queue.to_seq model))
        batches)

let test_fifo_sim_model () =
  let w =
    Sim.Workload.parallel_ops ~model:(Fq.sim_model ()) ~records_per_node:1 ~n_nodes:150 ()
  in
  let m = Sim.Batcher.run (Sim.Batcher.default ~p:4) w in
  Alcotest.(check int) "ops all batched" 150 m.Sim.Metrics.batch_size_total

(* ---------- skip list ---------- *)

let test_skiplist_insert_mem () =
  let s = Sk.create () in
  Alcotest.(check bool) "fresh insert" true (Sk.insert_seq s 5);
  Alcotest.(check bool) "duplicate" false (Sk.insert_seq s 5);
  Alcotest.(check bool) "mem" true (Sk.mem_seq s 5);
  Alcotest.(check bool) "not mem" false (Sk.mem_seq s 6);
  Alcotest.(check int) "length" 1 (Sk.length s)

let test_skiplist_batch () =
  let s = Sk.create () in
  ignore (Sk.insert_seq s 10);
  let ops = [| Sk.insert 5; Sk.insert 15; Sk.insert 10; Sk.mem 5; Sk.mem 99 |] in
  Sk.run_batch s ops;
  (match ops.(0), ops.(2), ops.(3), ops.(4) with
  | Sk.Insert a, Sk.Insert dup, Sk.Mem m1, Sk.Mem m2 ->
      Alcotest.(check bool) "inserted 5" true a.Sk.inserted;
      Alcotest.(check bool) "dup not inserted" false dup.Sk.inserted;
      Alcotest.(check bool) "mem 5" true m1.Sk.found;
      Alcotest.(check bool) "mem 99" false m2.Sk.found
  | _ -> Alcotest.fail "unexpected ops");
  Alcotest.(check (list int)) "sorted" [ 5; 10; 15 ] (Sk.to_list s);
  Sk.check_invariants s

let test_skiplist_batch_duplicates_within () =
  let s = Sk.create () in
  let ops = [| Sk.insert 7; Sk.insert 7; Sk.insert 7 |] in
  Sk.run_batch s ops;
  Alcotest.(check int) "one key" 1 (Sk.length s);
  let inserted =
    Array.to_list ops
    |> List.filter (function Sk.Insert r -> r.Sk.inserted | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "exactly one marked inserted" 1 inserted

let test_skiplist_large_sorted () =
  let s = Sk.create ~seed:9 () in
  for i = 999 downto 0 do
    ignore (Sk.insert_seq s i)
  done;
  Alcotest.(check int) "length" 1000 (Sk.length s);
  Alcotest.(check (list int)) "sorted" (List.init 1000 Fun.id) (Sk.to_list s);
  Sk.check_invariants s

let prop_skiplist_matches_set =
  QCheck.Test.make ~name:"skiplist batches match Set" ~count:100
    QCheck.(
      pair small_int
        (list_of_size Gen.(0 -- 8) (list_of_size Gen.(0 -- 20) (int_bound 500))))
    (fun (seed, batches) ->
      let module IS = Set.Make (Int) in
      let s = Sk.create ~seed () in
      let model = ref IS.empty in
      List.iter
        (fun batch ->
          Sk.run_batch s (Array.of_list (List.map Sk.insert batch));
          List.iter (fun k -> model := IS.add k !model) batch)
        batches;
      Sk.check_invariants s;
      Sk.to_list s = IS.elements !model)

let test_skiplist_delete () =
  let s = Sk.create () in
  List.iter (fun k -> ignore (Sk.insert_seq s k)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "delete present" true (Sk.delete_seq s 3);
  Alcotest.(check bool) "delete absent" false (Sk.delete_seq s 3);
  Alcotest.(check (list int)) "remaining" [ 1; 2; 4; 5 ] (Sk.to_list s);
  Sk.check_invariants s

let test_skiplist_delete_all () =
  let s = Sk.create ~seed:5 () in
  for i = 0 to 199 do
    ignore (Sk.insert_seq s i)
  done;
  for i = 0 to 199 do
    Alcotest.(check bool) "deleted" true (Sk.delete_seq s i)
  done;
  Alcotest.(check int) "empty" 0 (Sk.length s);
  Sk.check_invariants s

let test_skiplist_batch_phases () =
  (* Inserts, then deletes, then membership. *)
  let s = Sk.create () in
  ignore (Sk.insert_seq s 1);
  let m1 = Sk.mem 1 and m2 = Sk.mem 2 in
  Sk.run_batch s [| m1; Sk.delete 1; Sk.insert 2; m2 |];
  (match m1, m2 with
  | Sk.Mem a, Sk.Mem b ->
      Alcotest.(check bool) "1 deleted before mem" false a.Sk.found;
      Alcotest.(check bool) "2 inserted before mem" true b.Sk.found
  | _ -> assert false);
  Sk.check_invariants s

let prop_skiplist_with_deletes_matches_set =
  QCheck.Test.make ~name:"skiplist insert/delete batches match Set" ~count:150
    QCheck.(
      list_of_size Gen.(0 -- 8)
        (list_of_size Gen.(0 -- 20) (pair bool (int_bound 100))))
    (fun batches ->
      let module IS = Set.Make (Int) in
      let s = Sk.create () in
      let model = ref IS.empty in
      List.iter
        (fun batch ->
          let ops =
            List.map (fun (ins, k) -> if ins then Sk.insert k else Sk.delete k) batch
          in
          Sk.run_batch s (Array.of_list ops);
          (* Model the same phases: all inserts, then all deletes. *)
          List.iter (fun (ins, k) -> if ins then model := IS.add k !model) batch;
          List.iter (fun (ins, k) -> if not ins then model := IS.remove k !model) batch)
        batches;
      Sk.check_invariants s;
      Sk.to_list s = IS.elements !model)

let seq_pfor n body =
  for i = 0 to n - 1 do
    body i
  done

let test_skiplist_parallel_bop_parity () =
  (* run_batch_with with a sequential pfor must produce the same list as
     run_batch for the same batches. *)
  let rng = Util.Rng.create ~seed:31 in
  let a = Sk.create ~seed:1 () and b = Sk.create ~seed:1 () in
  for _ = 1 to 20 do
    let batch () =
      Array.init (Util.Rng.int rng 12 + 1) (fun _ -> Sk.insert (Util.Rng.int rng 200))
    in
    let ba = batch () in
    (* Same keys in both structures. *)
    let bb = Array.map (function Sk.Insert r -> Sk.insert r.Sk.key | op -> op) ba in
    Sk.run_batch a ba;
    Sk.run_batch_with ~pfor:seq_pfor b bb
  done;
  Sk.check_invariants a;
  Sk.check_invariants b;
  Alcotest.(check (list int)) "same contents" (Sk.to_list a) (Sk.to_list b)

let test_skiplist_parallel_bop_duplicates () =
  let s = Sk.create () in
  Sk.run_batch_with ~pfor:seq_pfor s [| Sk.insert 5; Sk.insert 5; Sk.insert 3 |];
  Alcotest.(check (list int)) "dedup" [ 3; 5 ] (Sk.to_list s);
  Sk.check_invariants s

let prop_skiplist_parallel_bop_matches_set =
  QCheck.Test.make ~name:"parallel BOP batches match Set" ~count:100
    QCheck.(list_of_size Gen.(0 -- 8) (list_of_size Gen.(0 -- 20) (int_bound 300)))
    (fun batches ->
      let module IS = Set.Make (Int) in
      let s = Sk.create () in
      let model = ref IS.empty in
      List.iter
        (fun batch ->
          Sk.run_batch_with ~pfor:seq_pfor s
            (Array.of_list (List.map Sk.insert batch));
          List.iter (fun k -> model := IS.add k !model) batch)
        batches;
      Sk.check_invariants s;
      Sk.to_list s = IS.elements !model)

(* ---------- 2-3 tree ---------- *)

let test_two_three_insert () =
  let t = List.fold_left T23.insert T23.empty [ 5; 2; 8; 1; 9; 3 ] in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] (T23.to_sorted_list t);
  Alcotest.(check int) "size" 6 (T23.size t);
  Alcotest.(check bool) "mem" true (T23.mem t 8);
  Alcotest.(check bool) "not mem" false (T23.mem t 4);
  T23.check_invariants t

let test_two_three_duplicates () =
  let t = List.fold_left T23.insert T23.empty [ 5; 5; 5 ] in
  Alcotest.(check int) "size" 1 (T23.size t)

let test_two_three_batch () =
  let t = List.fold_left T23.insert T23.empty [ 10; 20 ] in
  let ops = [| T23.insert_op 5; T23.insert_op 15; T23.insert_op 10; T23.mem_op 15 |] in
  let t = T23.run_batch t ops in
  Alcotest.(check (list int)) "sorted" [ 5; 10; 15; 20 ] (T23.to_sorted_list t);
  (match ops.(2), ops.(3) with
  | T23.Insert dup, T23.Mem m ->
      Alcotest.(check bool) "dup" false dup.T23.inserted;
      Alcotest.(check bool) "mem sees batch" true m.T23.found
  | _ -> Alcotest.fail "unexpected");
  T23.check_invariants t

let test_two_three_height_logarithmic () =
  let t = List.fold_left T23.insert T23.empty (List.init 1023 Fun.id) in
  (* Height of a 2-3 tree with n keys is at most log2(n+1). *)
  Alcotest.(check bool) "height bounded" true (T23.height t <= 10);
  T23.check_invariants t

let prop_two_three_matches_set =
  QCheck.Test.make ~name:"2-3 tree batches match Set" ~count:100
    QCheck.(list_of_size Gen.(0 -- 8) (list_of_size Gen.(0 -- 20) (int_bound 300)))
    (fun batches ->
      let module IS = Set.Make (Int) in
      let t, model =
        List.fold_left
          (fun (t, model) batch ->
            let ops = Array.of_list (List.map T23.insert_op batch) in
            let t = T23.run_batch t ops in
            (t, List.fold_left (fun m k -> IS.add k m) model batch))
          (T23.empty, IS.empty) batches
      in
      T23.check_invariants t;
      T23.to_sorted_list t = IS.elements model)

let test_two_three_delete () =
  let t = List.fold_left T23.insert T23.empty [ 5; 2; 8; 1; 9; 3; 7 ] in
  let t = T23.delete t 5 in
  T23.check_invariants t;
  Alcotest.(check (list int)) "after delete 5" [ 1; 2; 3; 7; 8; 9 ] (T23.to_sorted_list t);
  let t = T23.delete t 42 in
  Alcotest.(check int) "absent delete no-op" 6 (T23.size t);
  T23.check_invariants t

let test_two_three_delete_all_orders () =
  (* Delete every key in several orders; tree must stay balanced. *)
  let keys = List.init 64 Fun.id in
  let build () = List.fold_left T23.insert T23.empty keys in
  List.iter
    (fun order ->
      let t = List.fold_left T23.delete (build ()) order in
      T23.check_invariants t;
      Alcotest.(check int) "emptied" 0 (T23.size t))
    [ keys; List.rev keys; List.filter (fun k -> k mod 2 = 0) keys @ List.filter (fun k -> k mod 2 = 1) keys ]

let test_two_three_batch_delete () =
  let t = List.fold_left T23.insert T23.empty [ 1; 2; 3 ] in
  let d1 = T23.delete_op 2 and d2 = T23.delete_op 9 and m = T23.mem_op 2 in
  let t = T23.run_batch t [| d1; m; d2; T23.insert_op 4 |] in
  (match d1, d2, m with
  | T23.Delete a, T23.Delete b, T23.Mem q ->
      Alcotest.(check bool) "deleted 2" true a.T23.deleted;
      Alcotest.(check bool) "absent" false b.T23.deleted;
      Alcotest.(check bool) "mem after delete" false q.T23.found
  | _ -> assert false);
  Alcotest.(check (list int)) "net effect" [ 1; 3; 4 ] (T23.to_sorted_list t);
  T23.check_invariants t

let prop_two_three_with_deletes_matches_set =
  QCheck.Test.make ~name:"2-3 tree insert/delete matches Set" ~count:200
    QCheck.(list (pair bool (int_bound 60)))
    (fun cmds ->
      let module IS = Set.Make (Int) in
      let t, model =
        List.fold_left
          (fun (t, m) (ins, k) ->
            if ins then (T23.insert t k, IS.add k m) else (T23.delete t k, IS.remove k m))
          (T23.empty, IS.empty) cmds
      in
      T23.check_invariants t;
      T23.to_sorted_list t = IS.elements model)

(* ---------- priority queue ---------- *)

let test_pqueue_order () =
  let q =
    List.fold_left
      (fun q (p, v) -> Pq.insert q ~prio:p ~value:v)
      Pq.empty
      [ (5, 50); (1, 10); (3, 30) ]
  in
  Pq.check_invariants q;
  Alcotest.(check (option (pair int int))) "min" (Some (1, 10)) (Pq.find_min q);
  let sorted = Pq.to_sorted_list q in
  Alcotest.(check (list int)) "prios ascending" [ 1; 3; 5 ] (List.map fst sorted)

let test_pqueue_batch () =
  let q = Pq.insert Pq.empty ~prio:7 ~value:70 in
  let e1 = Pq.extract_op () and e2 = Pq.extract_op () in
  let ops = [| Pq.insert_op ~prio:3 ~value:30; e1; e2; Pq.insert_op ~prio:1 ~value:11 |] in
  let q = Pq.run_batch q ops in
  (* Inserts apply first: heap contains prios 7, 3, 1; extractions get 1 then 3. *)
  (match e1, e2 with
  | Pq.Extract_min r1, Pq.Extract_min r2 ->
      Alcotest.(check (option (pair int int))) "e1" (Some (1, 11)) r1.Pq.extracted;
      Alcotest.(check (option (pair int int))) "e2" (Some (3, 30)) r2.Pq.extracted
  | _ -> Alcotest.fail "unexpected");
  Alcotest.(check int) "size" 1 (Pq.size q);
  Pq.check_invariants q

let test_pqueue_extract_empty () =
  let e = Pq.extract_op () in
  let q = Pq.run_batch Pq.empty [| e |] in
  (match e with
  | Pq.Extract_min r -> Alcotest.(check (option (pair int int))) "none" None r.Pq.extracted
  | _ -> assert false);
  Alcotest.(check bool) "still empty" true (Pq.is_empty q)

let prop_pqueue_heapsort =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(list small_nat)
    (fun l ->
      let q = List.fold_left (fun q p -> Pq.insert q ~prio:p ~value:p) Pq.empty l in
      Pq.check_invariants q;
      List.map fst (Pq.to_sorted_list q) = List.sort compare l)

let prop_pqueue_batch_equals_seq =
  QCheck.Test.make ~name:"pqueue batch inserts = sequential inserts" ~count:200
    QCheck.(list small_nat)
    (fun l ->
      let seq = List.fold_left (fun q p -> Pq.insert q ~prio:p ~value:p) Pq.empty l in
      let batched =
        Pq.run_batch Pq.empty
          (Array.of_list (List.map (fun p -> Pq.insert_op ~prio:p ~value:p) l))
      in
      Pq.to_sorted_list seq = Pq.to_sorted_list batched)

(* ---------- cost models ---------- *)

let test_counter_model_shape () =
  let m = C.sim_model () in
  let p = m.Batched.Model.batch_cost (Array.init 8 Fun.id) in
  (* Two sweeps over 8 leaves: work 2*22, span 2*7. *)
  Alcotest.(check int) "work" 44 (Par.work p);
  Alcotest.(check int) "span" 14 (Par.span p)

let test_skiplist_model_grows () =
  let m = Sk.sim_model ~initial_size:1024 () in
  let c1 = m.Batched.Model.seq_cost 0 in
  for i = 1 to 100_000 do
    ignore (m.Batched.Model.seq_cost i)
  done;
  let c2 = m.Batched.Model.seq_cost 0 in
  Alcotest.(check bool) "cost grows with size" true (c2 > c1);
  m.Batched.Model.reset ();
  Alcotest.(check int) "reset restores" c1 (m.Batched.Model.seq_cost 0)

let test_stack_model_amortized () =
  let m = St.sim_model () in
  (* Total work of n sequential pushes is O(n) amortized: <= c*n. *)
  let total = ref 0 in
  let n = 10_000 in
  for i = 0 to n - 1 do
    total := !total + m.Batched.Model.seq_cost i
  done;
  Alcotest.(check bool) "amortized linear" true (!total < 8 * n)

let test_model_log2 () =
  Alcotest.(check int) "log2 2" 1 (Batched.Model.log2_cost 2);
  Alcotest.(check int) "log2 1024" 10 (Batched.Model.log2_cost 1024);
  Alcotest.(check bool) "log2 small" true (Batched.Model.log2_cost 0 >= 1)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_counter_linearizable;
      prop_stack_matches_list_model;
      prop_fifo_matches_queue_model;
      prop_skiplist_matches_set;
      prop_skiplist_with_deletes_matches_set;
      prop_skiplist_parallel_bop_matches_set;
      prop_two_three_matches_set;
      prop_two_three_with_deletes_matches_set;
      prop_pqueue_heapsort;
      prop_pqueue_batch_equals_seq;
    ]

let () =
  Alcotest.run "batched"
    [
      ( "counter",
        [
          Alcotest.test_case "batch prefix" `Quick test_counter_batch_prefix;
          Alcotest.test_case "negative amounts" `Quick test_counter_negative;
          Alcotest.test_case "empty batch" `Quick test_counter_empty_batch;
          Alcotest.test_case "seq matches batch" `Quick test_counter_seq_matches_batch;
        ] );
      ( "stack",
        [
          Alcotest.test_case "push pop" `Quick test_stack_push_pop;
          Alcotest.test_case "pop empty" `Quick test_stack_pop_empty;
          Alcotest.test_case "mixed phases" `Quick test_stack_mixed_batch_phases;
          Alcotest.test_case "doubling" `Quick test_stack_doubling;
          Alcotest.test_case "shrinking" `Quick test_stack_shrinking;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "phases" `Quick test_fifo_phases;
          Alcotest.test_case "empty dequeue" `Quick test_fifo_empty_dequeue;
          Alcotest.test_case "growth wraparound" `Quick test_fifo_growth_wraparound;
          Alcotest.test_case "sim model" `Quick test_fifo_sim_model;
        ] );
      ( "skiplist",
        [
          Alcotest.test_case "insert mem" `Quick test_skiplist_insert_mem;
          Alcotest.test_case "batch" `Quick test_skiplist_batch;
          Alcotest.test_case "batch duplicates" `Quick test_skiplist_batch_duplicates_within;
          Alcotest.test_case "large sorted" `Quick test_skiplist_large_sorted;
          Alcotest.test_case "delete" `Quick test_skiplist_delete;
          Alcotest.test_case "delete all" `Quick test_skiplist_delete_all;
          Alcotest.test_case "batch phases" `Quick test_skiplist_batch_phases;
          Alcotest.test_case "parallel BOP parity" `Quick test_skiplist_parallel_bop_parity;
          Alcotest.test_case "parallel BOP duplicates" `Quick
            test_skiplist_parallel_bop_duplicates;
        ] );
      ( "two_three",
        [
          Alcotest.test_case "insert" `Quick test_two_three_insert;
          Alcotest.test_case "duplicates" `Quick test_two_three_duplicates;
          Alcotest.test_case "batch" `Quick test_two_three_batch;
          Alcotest.test_case "height" `Quick test_two_three_height_logarithmic;
          Alcotest.test_case "delete" `Quick test_two_three_delete;
          Alcotest.test_case "delete all orders" `Quick test_two_three_delete_all_orders;
          Alcotest.test_case "batch delete" `Quick test_two_three_batch_delete;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "batch" `Quick test_pqueue_batch;
          Alcotest.test_case "extract empty" `Quick test_pqueue_extract_empty;
        ] );
      ( "models",
        [
          Alcotest.test_case "counter shape" `Quick test_counter_model_shape;
          Alcotest.test_case "skiplist grows" `Quick test_skiplist_model_grows;
          Alcotest.test_case "stack amortized" `Quick test_stack_model_amortized;
          Alcotest.test_case "log2" `Quick test_model_log2;
        ] );
      ("properties", qcheck_cases);
    ]
