test/test_sim.ml: Alcotest Batched Dag Gen List Printf QCheck QCheck_alcotest Sim
