test/test_runtime.ml: Alcotest Array Atomic Batched Domain Fun List Runtime Util
