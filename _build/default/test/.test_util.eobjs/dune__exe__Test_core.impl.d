test/test_core.ml: Alcotest Batcher_core Buffer Format Hashtbl List Printf
