test/test_util.ml: Alcotest Array Fun Gen List QCheck QCheck_alcotest Util
