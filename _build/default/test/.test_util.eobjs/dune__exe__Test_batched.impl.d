test/test_batched.ml: Alcotest Array Batched Fun Gen Int List Par QCheck QCheck_alcotest Queue Set Sim Util
