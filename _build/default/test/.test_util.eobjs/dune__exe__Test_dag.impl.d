test/test_dag.ml: Alcotest Array Buffer Dag Format Fun List Par QCheck QCheck_alcotest Str String
