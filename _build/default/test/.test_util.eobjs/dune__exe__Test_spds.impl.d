test/test_spds.ml: Alcotest Array Batched Fun Gen Int List Map QCheck QCheck_alcotest Set Sim
