test/test_spds.mli:
