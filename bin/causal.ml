(* Causal what-if profiler: the grid runner.

     dune exec bin/causal.exe -- --scenario standard
     dune exec bin/causal.exe -- --scenario smoke --exec both --duration 0.4
     dune exec bin/causal.exe -- --exec sim --factors 1.25,2,4

   The sim leg replays the scenario's request array through
   Sim.Openloop once per (phase × factor) cell with that phase's cost
   knob scaled — exact, deterministic virtual speedups, each cell
   re-evaluating the Theorem-1 service budget so the table compares
   measured sensitivity against both the baseline phase shares and the
   bound's prediction. The runtime leg injects calibrated delays into
   every *other* phase of the real batch path (virtual speedup by
   relative slowdown, Coz-style) and diffs each cell against a
   uniformly-dilated control run. CAUSAL rows for both legs merge into
   the results file in one call; exit 1 on any span-conservation
   breach or Theorem-1 evaluation failure. *)

let usage () =
  prerr_endline
    "usage: causal [options]\n\n\
     Runs the causal what-if grid on one scenario and merges CAUSAL\n\
     rows into the results file.\n\
    \  --scenario NAME  scenario to profile (default standard; --list)\n\
    \  --list           list scenarios and exit\n\
    \  --exec MODE      sim | runtime | both (default both)\n\
    \  --p N            sim leg worker count (default: the scenario's\n\
    \                   first swept P -- the overloaded end)\n\
    \  --factors LIST   comma-separated virtual speedups > 1\n\
    \                   (default sim 1.25,2,4; runtime 2)\n\
    \  --workers N      runtime pool size (default: recommended count)\n\
    \  --duration S     runtime seconds per point (default: min of the\n\
    \                   scenario's duration and 1s)\n\
    \  --mode NAME      runtime batch-path mode (default pending_array)\n\
    \  --shards K       runtime shard count (default: scenario's max K)\n\
    \  --seed N         override the scenario's seed\n\
    \  --out PATH       results file (default BENCH_results.json)\n\
    \  --quiet          print only the ranked tables and failures\n\
     Exit status: 0 ok, 1 span-conservation breach or Theorem-1\n\
     bound-evaluation failure, 2 usage error."

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("causal: " ^ m);
      usage ();
      exit 2)
    fmt

let () =
  let scenario = ref "standard" in
  let list_only = ref false in
  let exec = ref "both" in
  let p = ref None in
  let factors = ref None in
  let workers = ref None in
  let duration = ref None in
  let mode = ref Runtime.Batcher_rt.Faa_array in
  let shards = ref None in
  let seed = ref None in
  let out = ref "BENCH_results.json" in
  let quiet = ref false in
  let args = Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)) in
  let rec go = function
    | [] -> ()
    | "--list" :: rest ->
        list_only := true;
        go rest
    | "--quiet" :: rest ->
        quiet := true;
        go rest
    | "--scenario" :: v :: rest ->
        scenario := v;
        go rest
    | "--exec" :: v :: rest ->
        if v <> "sim" && v <> "runtime" && v <> "both" then
          die "--exec expects sim|runtime|both, got %S" v;
        exec := v;
        go rest
    | "--p" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            p := Some n;
            go rest
        | _ -> die "--p expects a positive integer, got %S" v)
    | "--factors" :: v :: rest ->
        let parsed =
          List.map
            (fun s ->
              match float_of_string_opt (String.trim s) with
              | Some f when f > 1.0 -> f
              | _ -> die "--factors expects numbers > 1, got %S" s)
            (String.split_on_char ',' v)
        in
        if parsed = [] then die "--factors expects at least one factor";
        factors := Some parsed;
        go rest
    | "--workers" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            workers := Some n;
            go rest
        | _ -> die "--workers expects a positive integer, got %S" v)
    | "--duration" :: v :: rest -> (
        match float_of_string_opt v with
        | Some d when d > 0.0 ->
            duration := Some d;
            go rest
        | _ -> die "--duration expects positive seconds, got %S" v)
    | "--mode" :: v :: rest -> (
        match Runtime.Batcher_rt.mode_of_string v with
        | Some m ->
            mode := m;
            go rest
        | None -> die "--mode expects a batch-path mode, got %S" v)
    | "--shards" :: v :: rest -> (
        match int_of_string_opt v with
        | Some k when k >= 1 ->
            shards := Some k;
            go rest
        | _ -> die "--shards expects a positive integer, got %S" v)
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n ->
            seed := Some n;
            go rest
        | _ -> die "--seed expects an integer, got %S" v)
    | "--out" :: v :: rest ->
        out := v;
        go rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ -> die "unknown argument %s" arg
  in
  go args;
  if !list_only then begin
    List.iter
      (fun (s : Svc.Scenario.t) ->
        Printf.printf "%-14s %s\n" s.Svc.Scenario.name s.Svc.Scenario.descr)
      Svc.Scenario.all;
    exit 0
  end;
  let sc =
    match Svc.Scenario.find !scenario with
    | Some sc -> sc
    | None ->
        die "unknown scenario %S (have: %s)" !scenario
          (String.concat ", " (Svc.Scenario.names ()))
  in
  let sc =
    match !seed with None -> sc | Some s -> { sc with Svc.Scenario.seed = s }
  in
  let rows = ref [] in
  let errors = ref [] in
  let leg name run =
    if not !quiet then Printf.printf "[causal] %s leg: %s\n%!" name !scenario;
    let r = run () in
    print_string (Obs.Causal.render r.Svc.Causal.profile);
    rows := !rows @ r.Svc.Causal.rows;
    errors := !errors @ r.Svc.Causal.errors
  in
  if !exec = "sim" || !exec = "both" then
    leg "sim" (fun () -> Svc.Causal.run_sim ?p:!p ?factors:!factors sc);
  if !exec = "runtime" || !exec = "both" then
    leg "runtime" (fun () ->
        Svc.Causal.run_rt ?workers:!workers ?duration_s:!duration ~mode:!mode
          ?shards:!shards ?factors:!factors sc);
  Svc.Report.merge_causal ~path:!out ~scenario:sc.Svc.Scenario.name !rows;
  Printf.printf "[causal] merged %d CAUSAL rows for %s into %s\n%!"
    (List.length !rows) sc.Svc.Scenario.name !out;
  match !errors with
  | [] -> ()
  | fails ->
      List.iter (fun f -> Printf.printf "[causal] FAIL: %s\n" f) fails;
      exit 1
