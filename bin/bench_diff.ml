(* Compare two BENCH_results.json files and print throughput deltas.

   Usage: bench_diff.exe [--gate-p99 PCT] OLD.json NEW.json

   Experiments are matched by id; rows are matched by the signature of
   their non-metric fields (every field except the recognized metric
   keys), so the tool needs no per-experiment schema knowledge. For
   each matched row it prints old vs. new for the metric fields it
   knows ("ops_per_sec" and "throughput" count up, "ns", "ns_per_run"
   and "makespan" count down) with a percent delta. Rows present on
   only one side are listed, not diffed.

   Exits 0 by default — a reporting tool, not a gate — unless a gate
   flag is given:

   --gate-p99 PCT turns the service rows' tail into CI teeth: exit 1
   when any matched row's "p99_ns" grew by more than PCT percent. p99
   is the gated percentile deliberately: p50 moves with load-point luck
   and p999 of a short run is a handful of samples, while a p99 shift
   is what a real batching/scheduling regression looks like in the SVC
   rows.

   --gate-m1 PCT is its submit-path mirror: exit 1 when any matched M1
   row's "ops_per_sec" fell by more than PCT percent. M1 is the
   contended-batchify microbenchmark, the workload every batch-path
   change targets; rows are matched by full signature (mode and worker
   count), so a regression in any mode x workers cell trips the gate
   even if another cell improved. The one exemption is the legacy
   atomic_list ablation floor: its multi-worker wall clock is a
   documented preemption lottery on the single-CPU container
   (best-of-24 stddev/mean ~80%, EXPERIMENTS.md M1), so its rows are
   recorded and diffed but carry no gate teeth. *)

let metric_keys =
  (* key, higher_is_better *)
  [
    ("ops_per_sec", true);
    ("throughput", true);
    ("ns", false);
    ("ns_per_run", false);
    ("makespan", false);
    ("minor_words_per_op", false);
    (* Theorem-1 bucket decomposition (bench ATTRIB rows): lower is
       better for every bucket — core/batch/setup growth means more
       work executed for the same workload, idle/wait/sched growth
       means the same work scheduled worse. *)
    (* Sharded K-sweep (micro M3 rows): the headline is throughput
       relative to the unsharded baseline. Batch counts are metrics
       (not identity) so rows keep matching across runs — fewer,
       fuller batches amortize setup better. *)
    ("speedup_vs_k1", true);
    ("total_batches", false);
    ("max_batch", true);
    ("span_realized", false);
    ("attrib_core", false);
    ("attrib_batch", false);
    ("attrib_setup", false);
    ("attrib_sched", false);
    ("attrib_idle", false);
    ("attrib_wait", false);
    (* Service rows (SVC): per-op-class latency digests and goodput
       from the open-loop drivers. "requests" is a metric (not
       identity) because the runtime leg's request count follows the
       seeded arrival draw, not the config. *)
    ("goodput", true);
    ("requests", true);
    ("p50_ns", false);
    ("p99_ns", false);
    ("p999_ns", false);
    (* Bool, never diffed numerically — listed so the small-sample
       p999 annotation stays out of the row signature. *)
    ("p999_approx", false);
    ("mean_ns", false);
    ("max_ns", false);
    ("max_batches_seen", false);
    (* Offered-load sweep rows (SVC_LOAD): each grid point reports its
       offered rate, what was actually delivered, and the share of
       total latency per phase; the per-(mode, K) knee row carries the
       headline knee_req_s that --gate-knee defends. Shares are
       attribution, not quality — direction is informational except
       exec (more of the latency being actual batch work is good). *)
    ("offered_req_s", true);
    ("knee_req_s", true);
    ("knee_mult", true);
    (* Bool, never diffed numerically — a (mode, K) whose every swept
       multiplier failed to keep up emits an explicit absent-knee row;
       listed so the verdict stays out of the row signature.
       --gate-knee treats a new absent knee as a trip. *)
    ("knee_absent", false);
    ("share_queue", false);
    ("share_sched", false);
    ("share_pending", false);
    ("share_exec", true);
    ("share_ovf", false);
    (* Causal what-if rows (CAUSAL): per-(phase, speedup) virtual-
       speedup deltas — d_* are fractional improvements (higher is
       better), bound_ns is the cell's Theorem-1 service budget,
       share_predicted/divergence are the shares-vs-sensitivity
       comparison (attribution, direction informational). *)
    ("bound_ns", false);
    ("d_mean", true);
    ("d_p99", true);
    ("d_goodput", true);
    ("d_bound", true);
    ("share_predicted", false);
    ("divergence", false);
  ]

let is_metric k = List.mem_assoc k metric_keys

let die msg =
  prerr_endline msg;
  exit 2

let load path =
  let ic = try open_in_bin path with Sys_error e -> die e in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.parse s with
  | Ok j -> j
  | Error e -> die (Printf.sprintf "%s: parse error: %s" path e)

let experiments j =
  match Obs.Json.member "experiments" j with
  | Some (Obs.Json.List l) ->
      List.filter_map
        (fun e ->
          match (Obs.Json.member "id" e, Obs.Json.member "rows" e) with
          | Some (Obs.Json.Str id), Some (Obs.Json.List rows) -> Some (id, rows)
          | _ -> None)
        l
  | _ -> die "no \"experiments\" array found"

(* A row's identity: its non-metric scalar fields, rendered in order. *)
let signature row =
  match row with
  | Obs.Json.Obj fields ->
      fields
      |> List.filter (fun (k, _) -> not (is_metric k))
      |> List.map (fun (k, v) ->
             Printf.sprintf "%s=%s" k (Obs.Json.to_string v))
      |> String.concat " "
  | _ -> Obs.Json.to_string row

let field_str row k =
  match Obs.Json.member k row with Some (Obs.Json.Str s) -> Some s | _ -> None

let metrics row =
  match row with
  | Obs.Json.Obj fields ->
      List.filter_map
        (fun (k, v) ->
          if is_metric k then
            Option.map (fun f -> (k, f)) (Obs.Json.to_float_opt v)
          else None)
        fields
  | _ -> []

let pct_delta ~old_v ~new_v =
  if old_v = 0.0 then nan else 100.0 *. (new_v -. old_v) /. old_v

let gate_p99 : float option ref = ref None
let p99_breaches : string list ref = ref []
let gate_m1 : float option ref = ref None
let m1_breaches : string list ref = ref []
let gate_knee : float option ref = ref None
let knee_breaches : string list ref = ref []

let diff_rows id old_rows new_rows =
  let old_tbl = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace old_tbl (signature r) r) old_rows;
  let matched = ref 0 in
  List.iter
    (fun nr ->
      let sg = signature nr in
      match Hashtbl.find_opt old_tbl sg with
      | None -> Printf.printf "  %s | %-40s  (new row)\n" id sg
      | Some orow ->
          incr matched;
          Hashtbl.remove old_tbl sg;
          (* A knee that vanished outright: every swept multiplier of
             this (mode, K) fell short. knee_req_s is 0 on both sides
             once the old run was also saturated (delta nan), so the
             numeric gate alone would let a persistently saturated
             configuration through silently. *)
          (match !gate_knee with
          | Some _
            when Obs.Json.member "knee_absent" nr
                 = Some (Obs.Json.Bool true) ->
              knee_breaches :=
                Printf.sprintf
                  "%s | %s: no swept rate kept up (knee absent)" id sg
                :: !knee_breaches
          | _ -> ());
          let om = metrics orow and nm = metrics nr in
          List.iter
            (fun (k, new_v) ->
              match List.assoc_opt k om with
              | None -> ()
              | Some old_v ->
                  let up = List.assoc k metric_keys in
                  let d = pct_delta ~old_v ~new_v in
                  let better = if up then d >= 0.0 else d <= 0.0 in
                  (match !gate_p99 with
                  | Some pct when k = "p99_ns" && (not (Float.is_nan d)) && d > pct
                    ->
                      p99_breaches :=
                        Printf.sprintf "%s | %s: p99 %.0fns -> %.0fns (%+.1f%% > %g%%)"
                          id sg old_v new_v d pct
                        :: !p99_breaches
                  | _ -> ());
                  (match !gate_knee with
                  | Some pct
                    when k = "knee_req_s"
                         && (not (Float.is_nan d))
                         && d < -.pct ->
                      knee_breaches :=
                        Printf.sprintf
                          "%s | %s: knee %.0f req/s -> %.0f (%+.1f%% < -%g%%)"
                          id sg old_v new_v d pct
                        :: !knee_breaches
                  | _ -> ());
                  (match !gate_m1 with
                  | Some pct
                    when id = "M1" && k = "ops_per_sec"
                         && (not (Float.is_nan d))
                         && d < -.pct
                         (* legacy ablation floor: diffed, never gated *)
                         && field_str nr "impl" <> Some "atomic_list" ->
                      m1_breaches :=
                        Printf.sprintf
                          "%s | %s: ops/s %.0f -> %.0f (%+.1f%% < -%g%%)" id sg
                          old_v new_v d pct
                        :: !m1_breaches
                  | _ -> ());
                  Printf.printf
                    "  %s | %-40s  %s: %14.1f -> %14.1f  %+7.1f%% %s\n" id sg
                    k old_v new_v d
                    (if Float.is_nan d || d = 0.0 then ""
                     else if better then "(better)"
                     else "(worse)"))
            nm)
    new_rows;
  Hashtbl.iter
    (fun sg _ -> Printf.printf "  %s | %-40s  (row removed)\n" id sg)
    old_tbl;
  !matched

let () =
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--gate-p99" :: v :: rest -> (
        match float_of_string_opt v with
        | Some pct when pct >= 0.0 ->
            gate_p99 := Some pct;
            parse rest
        | _ -> die (Printf.sprintf "--gate-p99 expects a percentage, got %S" v))
    | "--gate-m1" :: v :: rest -> (
        match float_of_string_opt v with
        | Some pct when pct >= 0.0 ->
            gate_m1 := Some pct;
            parse rest
        | _ -> die (Printf.sprintf "--gate-m1 expects a percentage, got %S" v))
    | "--gate-knee" :: v :: rest -> (
        match float_of_string_opt v with
        | Some pct when pct >= 0.0 ->
            gate_knee := Some pct;
            parse rest
        | _ ->
            die (Printf.sprintf "--gate-knee expects a percentage, got %S" v))
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        die (Printf.sprintf "unknown option %s" a)
    | a :: rest ->
        positional := a :: !positional;
        parse rest
  in
  parse (Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)));
  let old_path, new_path =
    match List.rev !positional with
    | [ o; n ] -> (o, n)
    | _ ->
        die
          "usage: bench_diff.exe [--gate-p99 PCT] [--gate-m1 PCT] \
           [--gate-knee PCT] OLD.json NEW.json"
  in
  let old_j = load old_path and new_j = load new_path in
  let old_exps = experiments old_j and new_exps = experiments new_j in
  Printf.printf "bench diff: %s -> %s\n" old_path new_path;
  let total = ref 0 in
  List.iter
    (fun (id, new_rows) ->
      match List.assoc_opt id old_exps with
      | None -> Printf.printf "  %s: only in %s\n" id new_path
      | Some old_rows -> total := !total + diff_rows id old_rows new_rows)
    new_exps;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id new_exps) then
        Printf.printf "  %s: only in %s\n" id old_path)
    old_exps;
  Printf.printf "%d row(s) compared\n" !total;
  let tripped = ref false in
  List.iter
    (fun b ->
      tripped := true;
      Printf.printf "GATE p99 regression: %s\n" b)
    (List.rev !p99_breaches);
  List.iter
    (fun b ->
      tripped := true;
      Printf.printf "GATE M1 regression: %s\n" b)
    (List.rev !m1_breaches);
  List.iter
    (fun b ->
      tripped := true;
      Printf.printf "GATE knee regression: %s\n" b)
    (List.rev !knee_breaches);
  if !tripped then exit 1
