(* Workload specs shared by the observability drivers (trace.exe,
   schedview.exe): one spec runs through BOTH the discrete-event
   simulator (Timesteps recorder, dual-deque scheduler) and the real
   OCaml-domains runtime (Nanoseconds recorder, helper-lock
   Batcher_rt). *)

type kind = Fig5 | Counter | Multi

let of_string = function
  | "fig5" | "skiplist" -> Some Fig5
  | "counter" -> Some Counter
  | "multi" -> Some Multi
  | _ -> None

let name = function Fig5 -> "fig5" | Counter -> "counter" | Multi -> "multi"

(* ---- simulator run ---- *)

let sim_workload kind ~n =
  match kind with
  | Fig5 ->
      Sim.Workload.parallel_ops
        ~model:
          (Batched.Skiplist.sim_model ~initial_size:100_000 ~records_per_node:100
             ())
        ~records_per_node:100 ~n_nodes:n ()
  | Counter ->
      Sim.Workload.parallel_ops
        ~model:(Batched.Counter.sim_model ())
        ~records_per_node:1 ~n_nodes:n ()
  | Multi ->
      Sim.Workload.interleaved_ops
        ~models:
          [
            Batched.Counter.sim_model ();
            Batched.Skiplist.sim_model ~initial_size:100_000
              ~records_per_node:10 ();
          ]
        ~records_per_node:10 ~n_nodes:n ()

(* Returns the recorder, the metrics, and the workload (for bound
   prediction). With [snapshot_oc], one snapshot line is appended to
   the channel after the run (the simulator has no mid-run hook; its
   totals still separate the sim and runtime phases in the stream). *)
let run_sim ?snapshot_oc kind ~p ~n ~seed ~overhead =
  let w = sim_workload kind ~n in
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:p () in
  let cfg = { (Sim.Batcher.default ~p) with Sim.Batcher.seed; overhead } in
  let m = Sim.Batcher.run ~recorder:rc cfg w in
  Option.iter
    (fun oc ->
      let s = Obs.Snapshot.to_channel rc oc in
      Obs.Snapshot.sample ~time:m.Sim.Metrics.makespan s;
      Obs.Snapshot.close s)
    snapshot_oc;
  (rc, m, w)

(* ---- real-runtime run ---- *)

(* With [snapshot_oc], a dedicated sampler domain polls the recorder's
   live counters every [snapshot_interval_s] while the workload runs,
   appending JSONL lines the user can `tail -f`. *)
let run_runtime ?snapshot_oc ?(snapshot_interval_s = 0.01) kind ~p ~n ~seed =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers:p () in
  let pool = Runtime.Pool.create ~recorder:rc ~num_workers:p () in
  let stop = Atomic.make false in
  let sampler =
    Option.map
      (fun oc ->
        let snap = Obs.Snapshot.to_channel rc oc in
        Domain.spawn (fun () ->
            Obs.Snapshot.every snap ~interval_s:snapshot_interval_s
              ~stop:(fun () -> Atomic.get stop);
            Obs.Snapshot.close snap))
      snapshot_oc
  in
  let pfor pool n body =
    Runtime.Pool.parallel_for pool ~grain:8 ~lo:0 ~hi:n body
  in
  let skiplist ~sid =
    let sl = Batched.Skiplist.create ~seed () in
    for i = 0 to 9_999 do
      ignore (Batched.Skiplist.insert_seq sl (2 * i))
    done;
    Runtime.Batcher_rt.create ~sid ~pool ~state:sl
      ~run_batch:(fun pool sl ops ->
        Batched.Skiplist.run_batch_with ~pfor:(pfor pool) sl ops)
      ()
  in
  let counter ~sid =
    Runtime.Batcher_rt.create ~sid ~pool ~state:(Batched.Counter.create ())
      ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
      ()
  in
  (match kind with
  | Fig5 ->
      let b = skiplist ~sid:0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              Runtime.Batcher_rt.batchify b (Batched.Skiplist.insert (20_000 + i))))
  | Counter ->
      let b = counter ~sid:0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun _ ->
              Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)))
  | Multi ->
      let c = counter ~sid:0 and s = skiplist ~sid:1 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              if i land 1 = 0 then
                Runtime.Batcher_rt.batchify c (Batched.Counter.op 1)
              else
                Runtime.Batcher_rt.batchify s
                  (Batched.Skiplist.insert (20_000 + i)))));
  Runtime.Pool.teardown pool;
  Atomic.set stop true;
  Option.iter Domain.join sampler;
  rc
