(* schedview: measured-vs-predicted Theorem-1 bound tables, per-worker
   utilization, and critical-path breakdown for one workload, plus a
   tabular viewer for snapshot JSONL streams.

   Default mode runs the workload deterministically through the
   simulator (and, with --runtime, through the OCaml-domains runtime),
   folds the recording into Obs.Attrib / Obs.Critpath, and prints:

   - the bound table: each Theorem-1 term next to the measured bucket
     that realizes it, with the makespan/bound ratio;
   - per-worker utilization rows (percentage of time per bucket);
   - the serialization chains and top critical-path segments.

   Conservation is a gate, not a report: if the attribution buckets do
   not sum to P x makespan (sim) or fail to tile each worker's observed
   span (runtime), schedview exits 1. CI runs this on every push.

     dune exec bin/schedview.exe -- --workload fig5 --p 4 --n 300
     dune exec bin/schedview.exe -- --workload multi --runtime --json sv.json
     dune exec bin/schedview.exe -- --snapshot-file live.jsonl *)

let pct ~of_ v =
  if of_ = 0 then 0.0 else 100.0 *. float_of_int v /. float_of_int of_

(* ---- per-worker utilization table ---- *)

let print_utilization (a : Obs.Attrib.t) =
  Printf.printf
    "  worker   core%%  batch%%  setup%%  sched%%   idle%%   wait%%   covered/span\n";
  Array.iter
    (fun (wa : Obs.Attrib.worker_account) ->
      let span = wa.wa_last - wa.wa_first in
      let b = wa.wa_buckets in
      Printf.printf
        "  %6d  %5.1f  %6.1f  %6.1f  %6.1f  %6.1f  %6.1f   %d/%d\n"
        wa.wa_worker
        (pct ~of_:span b.Obs.Attrib.core)
        (pct ~of_:span b.Obs.Attrib.batch)
        (pct ~of_:span b.Obs.Attrib.setup)
        (pct ~of_:span b.Obs.Attrib.sched)
        (pct ~of_:span b.Obs.Attrib.idle)
        (pct ~of_:span b.Obs.Attrib.wait)
        wa.wa_covered span)
    a.Obs.Attrib.per_worker

let print_critpath (cp : Obs.Critpath.t) ~makespan =
  Printf.printf "  T_inf witness: %d (%.1f%% of makespan), max op latency %d\n"
    cp.Obs.Critpath.t_inf_witness
    (pct ~of_:makespan cp.Obs.Critpath.t_inf_witness)
    cp.Obs.Critpath.max_op_latency;
  Array.iter
    (fun (c : Obs.Critpath.chain) ->
      if c.Obs.Critpath.ch_batches > 0 then
        Printf.printf
          "  structure %d: %d batches serialized over %d units (longest %d)\n"
          c.Obs.Critpath.ch_sid c.Obs.Critpath.ch_batches
          c.Obs.Critpath.ch_serial c.Obs.Critpath.ch_longest)
    cp.Obs.Critpath.chains;
  List.iteri
    (fun i (s : Obs.Critpath.segment) ->
      if i < 5 then
        Printf.printf "  top[%d]: %-5s sid=%d start=%d len=%d worker=%d\n" i
          s.Obs.Critpath.sg_kind s.Obs.Critpath.sg_sid s.Obs.Critpath.sg_start
          s.Obs.Critpath.sg_len s.Obs.Critpath.sg_worker)
    cp.Obs.Critpath.top

(* ---- sim: measured-vs-predicted bound table ---- *)

let sim_tables ~workload ~(metrics : Sim.Metrics.t) ~(a : Obs.Attrib.t)
    ~(cp : Obs.Critpath.t) =
  let p = metrics.Sim.Metrics.p in
  let t1, t_inf, n_ops, m = Sim.Workload.core_metrics workload in
  let w = metrics.Sim.Metrics.batch_work + metrics.Sim.Metrics.setup_work in
  let batch_span =
    List.fold_left
      (fun acc bd -> max acc bd.Sim.Metrics.bd_span)
      0 metrics.Sim.Metrics.batch_details
  in
  let setup_span = 2 * ((2 * Batcher_core.Theory.log2i p) + 1) in
  let s = batch_span + setup_span in
  let predicted = Check.Bound.theorem1 ~workload ~metrics in
  let tot = a.Obs.Attrib.total in
  let fdiv x y = if y = 0 then 0.0 else float_of_int x /. float_of_int y in
  Printf.printf
    "Theorem-1 decomposition (sim, %d workers, makespan %d steps):\n" p
    metrics.Sim.Metrics.makespan;
  Printf.printf "  %-22s %12s %12s   %s\n" "term" "predicted" "measured"
    "measured source";
  Printf.printf "  %-22s %12.1f %12.1f   %s\n" "T1/P" (fdiv t1 p)
    (fdiv tot.Obs.Attrib.core p) "core bucket / P";
  Printf.printf "  %-22s %12.1f %12.1f   %s\n" "(W(n)+n*s(n))/P"
    (fdiv (w + (n_ops * s)) p)
    (fdiv (tot.Obs.Attrib.batch + tot.Obs.Attrib.setup) p)
    "(batch+setup) / P";
  Printf.printf "  %-22s %12d %12.1f   %s\n" "m*s(n)" (m * s)
    (fdiv tot.Obs.Attrib.wait p) "wait bucket / P";
  Printf.printf "  %-22s %12d %12d   %s\n" "T_inf" t_inf
    metrics.Sim.Metrics.span_realized "realized span (witness below)";
  Printf.printf "  %-22s %12s %12.1f   %s\n" "sched+idle (unmodeled)" "-"
    (fdiv (tot.Obs.Attrib.sched + tot.Obs.Attrib.idle) p)
    "(sched+idle) / P";
  Printf.printf "  %-22s %12d %12d   ratio %.2f\n" "bound vs makespan" predicted
    metrics.Sim.Metrics.makespan
    (Check.Bound.ratio ~workload ~metrics);
  Printf.printf
    "  (n=%d ops, m=%d batches, s(n)=%d = widest batch span %d + setup %d)\n"
    n_ops m s batch_span setup_span;
  Printf.printf "\nPer-worker utilization (sim):\n";
  print_utilization a;
  Printf.printf "\nCritical path (sim):\n";
  print_critpath cp ~makespan:metrics.Sim.Metrics.makespan

(* ---- runtime: measured decomposition only (no sim-step prediction) ---- *)

let runtime_tables ~(a : Obs.Attrib.t) ~(cp : Obs.Critpath.t) =
  let tot = a.Obs.Attrib.total in
  let covered = Obs.Attrib.total_covered a in
  Printf.printf
    "\nRuntime decomposition (%d workers, %d ns of observed worker time):\n"
    a.Obs.Attrib.p covered;
  let row name v =
    Printf.printf "  %-8s %14d ns  %5.1f%%\n" name v (pct ~of_:covered v)
  in
  row "core" tot.Obs.Attrib.core;
  row "batch" tot.Obs.Attrib.batch;
  row "setup" tot.Obs.Attrib.setup;
  row "sched" tot.Obs.Attrib.sched;
  let span =
    Array.fold_left
      (fun acc (wa : Obs.Attrib.worker_account) ->
        max acc (wa.wa_last - wa.wa_first))
      0 a.Obs.Attrib.per_worker
  in
  Printf.printf "\nPer-worker utilization (runtime, span = loop entry..exit):\n";
  print_utilization a;
  Printf.printf "\nCritical path (runtime, ns):\n";
  print_critpath cp ~makespan:span

(* ---- snapshot JSONL viewer ---- *)

let view_snapshot_file path =
  let ic =
    try open_in path
    with Sys_error e ->
      prerr_endline ("schedview: " ^ e);
      exit 2
  in
  let die fmt =
    Printf.ksprintf
      (fun m ->
        close_in_noerr ic;
        prerr_endline ("schedview: " ^ path ^ ": " ^ m);
        exit 2)
      fmt
  in
  let geti j key =
    match Option.bind (Obs.Json.member key j) Obs.Json.to_float_opt with
    | Some f -> int_of_float f
    | None -> die "line missing %S" key
  in
  let delta j tag =
    match Obs.Json.member "deltas" j with
    | Some d -> (
        match Option.bind (Obs.Json.member tag d) Obs.Json.to_float_opt with
        | Some f -> int_of_float f
        | None -> 0)
    | None -> die "line missing deltas"
  in
  Printf.printf "  %6s %14s %8s %8s %8s %8s %8s %8s\n" "seq" "t" "dropped"
    "d.work" "d.steal" "d.b_start" "d.b_end" "d.op_done";
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         match Obs.Json.parse line with
         | Error e -> die "bad JSON line %d: %s" (!lines + 1) e
         | Ok j ->
             incr lines;
             Printf.printf "  %6d %14d %8d %8d %8d %8d %8d %8d\n" (geti j "seq")
               (geti j "t") (geti j "dropped") (delta j "work")
               (delta j "steal") (delta j "batch_start") (delta j "batch_end")
               (delta j "op_done")
       end
     done
   with End_of_file -> ());
  close_in_noerr ic;
  if !lines = 0 then die "no snapshot lines";
  Printf.printf "  (%d samples)\n" !lines;
  0

(* ---- driver ---- *)

let main workload overhead p n seed runtime json =
  let sim_rc, metrics, w = Workloads.run_sim workload ~p ~n ~seed ~overhead in
  let a = Obs.Attrib.of_recorder sim_rc in
  let cp = Obs.Critpath.of_recorder sim_rc in
  sim_tables ~workload:w ~metrics ~a ~cp;
  (* The gate: conservation must hold exactly on the sim clock, and the
     full cross-check (attrib vs sim counters, span/witness <= makespan)
     must pass. CI treats a non-zero exit here as a regression. *)
  let fail who = function
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "schedview: %s FAILED: %s\n" who e;
        exit 1
  in
  fail "sim conservation"
    (Obs.Attrib.check ~expected:(p * metrics.Sim.Metrics.makespan) a);
  fail "sim cross-check"
    (Check.Bound.cross_check ~workload:w ~metrics ~recorder:sim_rc ());
  Printf.printf "\nsim conservation: OK (buckets sum to %d x %d)\n" p
    metrics.Sim.Metrics.makespan;
  let rt =
    if not runtime then None
    else begin
      let rt_rc = Workloads.run_runtime workload ~p ~n ~seed in
      let ra = Obs.Attrib.of_recorder rt_rc in
      let rcp = Obs.Critpath.of_recorder rt_rc in
      runtime_tables ~a:ra ~cp:rcp;
      (* Runtime gate: buckets must tile each worker's observed span
         (segments are emitted back to back, so this is exact in
         integer nanoseconds unless events were dropped). *)
      fail "runtime conservation" (Obs.Attrib.check ra);
      Printf.printf "\nruntime conservation: OK (buckets tile observed spans)\n";
      Some (ra, rcp)
    end
  in
  (match json with
  | None -> ()
  | Some path ->
      let fields =
        [
          ("workload", Obs.Json.Str (Workloads.name workload));
          ("p", Obs.Json.Int p);
          ("n", Obs.Json.Int n);
          ("seed", Obs.Json.Int seed);
          ("makespan", Obs.Json.Int metrics.Sim.Metrics.makespan);
          ("span_realized", Obs.Json.Int metrics.Sim.Metrics.span_realized);
          ("bound", Obs.Json.Int (Check.Bound.theorem1 ~workload:w ~metrics));
          ("ratio", Obs.Json.Float (Check.Bound.ratio ~workload:w ~metrics));
          ("sim_attrib", Obs.Attrib.to_json a);
          ("sim_critpath", Obs.Critpath.to_json cp);
        ]
        @
        match rt with
        | None -> []
        | Some (ra, rcp) ->
            [
              ("runtime_attrib", Obs.Attrib.to_json ra);
              ("runtime_critpath", Obs.Critpath.to_json rcp);
            ]
      in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string (Obs.Json.Obj fields));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

let usage () =
  prerr_endline
    "usage: schedview [--workload fig5|counter|multi] [--model tree|fused|none]\n\
    \                 [--p P] [--n N] [--seed S] [--runtime] [--json out.json]\n\
    \       schedview --snapshot-file live.jsonl\n\n\
     Prints the measured-vs-predicted Theorem-1 bound table, per-worker\n\
     utilization, and critical-path chains for one workload. Exits 1 if\n\
     bucket conservation (sum = P x makespan / per-worker tiling) fails.\n\
    \  --workload       fig5 (default) | counter | multi\n\
    \  --model          simulator overhead model: tree (default) | fused | none\n\
    \  --p              worker count (default 4)\n\
    \  --n              operation count (default 200)\n\
    \  --seed           scheduler seed (default 1)\n\
    \  --runtime        also run and decompose the OCaml-domains runtime\n\
    \  --json           write the decomposition as JSON to PATH\n\
    \  --snapshot-file  render a snapshot JSONL stream as a table instead"

let () =
  let workload = ref Workloads.Fig5 in
  let overhead = ref Sim.Batcher.Tree_setup in
  let p = ref 4 in
  let n = ref 200 in
  let seed = ref 1 in
  let runtime = ref false in
  let json = ref None in
  let snapshot_file = ref None in
  let bad fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("schedview: " ^ m);
        usage ();
        exit 2)
      fmt
  in
  let parse_int name v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> bad "%s expects an integer, got %S" name v
  in
  let args = Array.to_list Sys.argv in
  let rec go = function
    | [] -> ()
    | arg :: rest ->
        let key, inline_value =
          match String.index_opt arg '=' with
          | Some i ->
              ( String.sub arg 0 i,
                Some (String.sub arg (i + 1) (String.length arg - i - 1)) )
          | None -> (arg, None)
        in
        let value rest k =
          match (inline_value, rest) with
          | Some v, _ -> k v rest
          | None, v :: rest -> k v rest
          | None, [] -> bad "%s expects a value" key
        in
        (match key with
        | "--workload" | "-workload" ->
            value rest (fun v rest ->
                (match Workloads.of_string v with
                | Some k -> workload := k
                | None -> bad "unknown workload %S (fig5|counter|multi)" v);
                go rest)
        | "--model" | "-model" ->
            value rest (fun v rest ->
                (match v with
                | "tree" -> overhead := Sim.Batcher.Tree_setup
                | "fused" -> overhead := Sim.Batcher.Fused_setup
                | "none" -> overhead := Sim.Batcher.No_setup
                | _ -> bad "unknown overhead model %S (tree|fused|none)" v);
                go rest)
        | "--p" | "-p" -> value rest (fun v rest -> p := parse_int key v; go rest)
        | "--n" | "-n" -> value rest (fun v rest -> n := parse_int key v; go rest)
        | "--seed" -> value rest (fun v rest -> seed := parse_int key v; go rest)
        | "--runtime" -> runtime := true; go rest
        | "--json" -> value rest (fun v rest -> json := Some v; go rest)
        | "--snapshot-file" ->
            value rest (fun v rest -> snapshot_file := Some v; go rest)
        | "--help" | "-h" -> usage (); exit 0
        | _ -> bad "unknown option %S" arg)
  in
  go (List.tl args);
  if !p < 1 then bad "--p must be >= 1";
  if !n < 1 then bad "--n must be >= 1";
  match !snapshot_file with
  | Some path -> exit (view_snapshot_file path)
  | None -> exit (main !workload !overhead !p !n !seed !runtime !json)
