(* Trace driver: runs one workload through BOTH the discrete-event
   simulator (Timesteps clock, dual-deque scheduler — the paper's exact
   protocol) and the real OCaml-domains runtime (Nanoseconds clock,
   helper-lock Batcher_rt), with an Obs.Recorder attached to each, and
   writes a single Chrome trace-event JSON holding the two runs as
   separate processes — open it in Perfetto / chrome://tracing.

   The sim process renders 1 simulated timestep as 1 us; the runtime
   process is wall-clock. Worker tracks show free/pending/executing/done
   status spans plus steal instants; each structure gets a synthetic
   batch track (tid 1000+sid) with one span per LAUNCHBATCH.

     dune exec bin/trace.exe -- --workload fig5 --p 4 --out trace.json
     dune exec bin/trace.exe -- --workload multi --p 8 --summary *)

type workload_kind = Fig5 | Counter | Multi

(* ---- simulator run ---- *)

let sim_workload kind ~n ~seed:_ =
  match kind with
  | Fig5 ->
      Sim.Workload.parallel_ops
        ~model:
          (Batched.Skiplist.sim_model ~initial_size:100_000 ~records_per_node:100
             ())
        ~records_per_node:100 ~n_nodes:n ()
  | Counter ->
      Sim.Workload.parallel_ops
        ~model:(Batched.Counter.sim_model ())
        ~records_per_node:1 ~n_nodes:n ()
  | Multi ->
      Sim.Workload.interleaved_ops
        ~models:
          [
            Batched.Counter.sim_model ();
            Batched.Skiplist.sim_model ~initial_size:100_000
              ~records_per_node:10 ();
          ]
        ~records_per_node:10 ~n_nodes:n ()

let run_sim kind ~p ~n ~seed ~overhead =
  let w = sim_workload kind ~n ~seed in
  let rc =
    Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:p ()
  in
  let cfg = { (Sim.Batcher.default ~p) with Sim.Batcher.seed; overhead } in
  let m = Sim.Batcher.run ~recorder:rc cfg w in
  (rc, m)

(* ---- real-runtime run ---- *)

let run_runtime kind ~p ~n ~seed =
  let rc =
    Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers:p ()
  in
  let pool = Runtime.Pool.create ~recorder:rc ~num_workers:p () in
  let pfor pool n body =
    Runtime.Pool.parallel_for pool ~grain:8 ~lo:0 ~hi:n body
  in
  let skiplist ~sid =
    let sl = Batched.Skiplist.create ~seed () in
    for i = 0 to 9_999 do
      ignore (Batched.Skiplist.insert_seq sl (2 * i))
    done;
    Runtime.Batcher_rt.create ~sid ~pool ~state:sl
      ~run_batch:(fun pool sl ops ->
        Batched.Skiplist.run_batch_with ~pfor:(pfor pool) sl ops)
      ()
  in
  let counter ~sid =
    Runtime.Batcher_rt.create ~sid ~pool ~state:(Batched.Counter.create ())
      ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
      ()
  in
  (match kind with
  | Fig5 ->
      let b = skiplist ~sid:0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              Runtime.Batcher_rt.batchify b (Batched.Skiplist.insert (20_000 + i))))
  | Counter ->
      let b = counter ~sid:0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun _ ->
              Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)))
  | Multi ->
      let c = counter ~sid:0 and s = skiplist ~sid:1 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              if i land 1 = 0 then
                Runtime.Batcher_rt.batchify c (Batched.Counter.op 1)
              else
                Runtime.Batcher_rt.batchify s
                  (Batched.Skiplist.insert (20_000 + i)))));
  Runtime.Pool.teardown pool;
  rc

(* ---- driver ---- *)

let main workload overhead p n seed out summary =
  if p < 1 then begin
    prerr_endline "trace: --p must be >= 1";
    exit 2
  end;
  let sim_rc, metrics = run_sim workload ~p ~n ~seed ~overhead in
  let rt_rc = run_runtime workload ~p ~n ~seed in
  let sim_sum = Obs.Summary.of_recorder sim_rc in
  let rt_sum = Obs.Summary.of_recorder rt_rc in
  Printf.printf
    "sim:     makespan %d steps, %d batches, %d events (max batches-while-pending %d)\n"
    metrics.Sim.Metrics.makespan metrics.Sim.Metrics.batches
    sim_sum.Obs.Summary.events
    sim_sum.Obs.Summary.max_batches_seen;
  Printf.printf
    "runtime: %d batches, %d events (max batches-while-pending %d — reported, not asserted)\n"
    rt_sum.Obs.Summary.batches rt_sum.Obs.Summary.events rt_sum.Obs.Summary.max_batches_seen;
  (match out with
  | Some path ->
      Obs.Chrome.write_file ~path
        [
          { Obs.Chrome.pid = 1; name = "sim (1 step = 1us)"; recording = sim_rc };
          { Obs.Chrome.pid = 2; name = "runtime (wall clock)"; recording = rt_rc };
        ];
      Printf.printf "wrote %s\n" path
  | None -> ());
  if summary then begin
    Format.printf "@.---- simulator ----@.%a" Obs.Summary.pp sim_sum;
    Format.printf "@.---- real runtime ----@.%a" Obs.Summary.pp rt_sum;
    Format.print_flush ()
  end;
  0

(* Hand-rolled CLI: cmdliner cannot spell the documented [--p] (it maps
   single-character names to [-p] only), so the flags here are parsed
   directly. Every option also accepts the [--flag=value] form. *)

let usage () =
  prerr_endline
    "usage: trace [--workload fig5|counter|multi] [--model tree|fused|none]\n\
    \             [--p P] [--n N] [--seed S] [--out trace.json] [--summary]\n\n\
     Runs the workload through the simulator (1 timestep = 1us) and the\n\
     real runtime, and writes both as one Chrome trace-event JSON.\n\
    \  --workload  fig5 (skip-list inserts, default) | counter | multi\n\
    \  --model     simulator LAUNCHBATCH overhead: tree (default) | fused | none\n\
    \  --p         worker count for both runs (default 4)\n\
    \  --n         operation count (default 200)\n\
    \  --seed      scheduler seed (default 1)\n\
    \  --out       write the combined Chrome trace to PATH\n\
    \  --summary   print aggregated histograms for both runs"

let () =
  let workload = ref Fig5 in
  let overhead = ref Sim.Batcher.Tree_setup in
  let p = ref 4 in
  let n = ref 200 in
  let seed = ref 1 in
  let out = ref None in
  let summary = ref false in
  let bad fmt = Printf.ksprintf (fun m -> prerr_endline ("trace: " ^ m); usage (); exit 2) fmt in
  let parse_int name v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> bad "%s expects an integer, got %S" name v
  in
  let args = Array.to_list Sys.argv in
  let rec go = function
    | [] -> ()
    | arg :: rest ->
        let key, inline_value =
          match String.index_opt arg '=' with
          | Some i ->
              ( String.sub arg 0 i,
                Some (String.sub arg (i + 1) (String.length arg - i - 1)) )
          | None -> (arg, None)
        in
        let value rest k =
          match (inline_value, rest) with
          | Some v, _ -> k v rest
          | None, v :: rest -> k v rest
          | None, [] -> bad "%s expects a value" key
        in
        (match key with
        | "--workload" | "-workload" ->
            value rest (fun v rest ->
                (match v with
                | "fig5" | "skiplist" -> workload := Fig5
                | "counter" -> workload := Counter
                | "multi" -> workload := Multi
                | _ -> bad "unknown workload %S (fig5|counter|multi)" v);
                go rest)
        | "--model" | "-model" ->
            value rest (fun v rest ->
                (match v with
                | "tree" -> overhead := Sim.Batcher.Tree_setup
                | "fused" -> overhead := Sim.Batcher.Fused_setup
                | "none" -> overhead := Sim.Batcher.No_setup
                | _ -> bad "unknown overhead model %S (tree|fused|none)" v);
                go rest)
        | "--p" | "-p" -> value rest (fun v rest -> p := parse_int key v; go rest)
        | "--n" | "-n" -> value rest (fun v rest -> n := parse_int key v; go rest)
        | "--seed" -> value rest (fun v rest -> seed := parse_int key v; go rest)
        | "--out" | "-o" -> value rest (fun v rest -> out := Some v; go rest)
        | "--summary" -> summary := true; go rest
        | "--help" | "-h" -> usage (); exit 0
        | _ -> bad "unknown option %S" arg)
  in
  go (List.tl args);
  if !p < 1 then bad "--p must be >= 1";
  if !n < 1 then bad "--n must be >= 1";
  exit (main !workload !overhead !p !n !seed !out !summary)
