(* Trace driver: runs one workload through BOTH the discrete-event
   simulator (Timesteps clock, dual-deque scheduler — the paper's exact
   protocol) and the real OCaml-domains runtime (Nanoseconds clock,
   helper-lock Batcher_rt), with an Obs.Recorder attached to each, and
   writes a single Chrome trace-event JSON holding the two runs as
   separate processes — open it in Perfetto / chrome://tracing.

   The sim process renders 1 simulated timestep as 1 us; the runtime
   process is wall-clock. Worker tracks show free/pending/executing/done
   status spans plus steal instants; each structure gets a synthetic
   batch track (tid 1000+sid) with one span per LAUNCHBATCH, and each
   worker a work track (tid 2000+w) of class-colored Work spans.

     dune exec bin/trace.exe -- --workload fig5 --p 4 --out trace.json
     dune exec bin/trace.exe -- --workload multi --p 8 --summary-only
     dune exec bin/trace.exe -- --workload fig5 --snapshot live.jsonl

   The workload plumbing lives in bin/workloads.ml, shared with
   schedview.exe. Any malformed flag (unknown workload, non-integer
   --p, ...) exits 2 via [bad]. *)

(* ---- driver ---- *)

let main workload overhead p n seed out summary summary_only snapshot =
  let snap_oc = Option.map open_out snapshot in
  let sim_rc, metrics, _w =
    Workloads.run_sim ?snapshot_oc:snap_oc workload ~p ~n ~seed ~overhead
  in
  let rt_rc =
    Workloads.run_runtime ?snapshot_oc:snap_oc workload ~p ~n ~seed
  in
  Option.iter close_out snap_oc;
  let sim_sum = Obs.Summary.of_recorder sim_rc in
  let rt_sum = Obs.Summary.of_recorder rt_rc in
  Printf.printf
    "sim:     makespan %d steps, %d batches, %d events (max batches-while-pending %d)\n"
    metrics.Sim.Metrics.makespan metrics.Sim.Metrics.batches
    sim_sum.Obs.Summary.events
    sim_sum.Obs.Summary.max_batches_seen;
  Printf.printf
    "runtime: %d batches, %d events (max batches-while-pending %d — reported, not asserted)\n"
    rt_sum.Obs.Summary.batches rt_sum.Obs.Summary.events rt_sum.Obs.Summary.max_batches_seen;
  (match (out, summary_only) with
  | Some path, false ->
      Obs.Chrome.write_file ~path
        [
          { Obs.Chrome.pid = 1; name = "sim (1 step = 1us)"; recording = sim_rc };
          { Obs.Chrome.pid = 2; name = "runtime (wall clock)"; recording = rt_rc };
        ];
      Printf.printf "wrote %s\n" path
  | Some path, true ->
      Printf.printf "--summary-only: skipping Chrome trace %s\n" path
  | None, _ -> ());
  Option.iter (fun path -> Printf.printf "snapshots -> %s\n" path) snapshot;
  if summary || summary_only then begin
    Format.printf "@.---- simulator ----@.%a" Obs.Summary.pp sim_sum;
    Format.printf "@.---- real runtime ----@.%a" Obs.Summary.pp rt_sum;
    Format.print_flush ()
  end;
  0

(* Hand-rolled CLI: cmdliner cannot spell the documented [--p] (it maps
   single-character names to [-p] only), so the flags here are parsed
   directly. Every option also accepts the [--flag=value] form. *)

let usage () =
  prerr_endline
    "usage: trace [--workload fig5|counter|multi] [--model tree|fused|none]\n\
    \             [--p P] [--n N] [--seed S] [--out trace.json]\n\
    \             [--summary] [--summary-only] [--snapshot live.jsonl]\n\n\
     Runs the workload through the simulator (1 timestep = 1us) and the\n\
     real runtime, and writes both as one Chrome trace-event JSON.\n\
    \  --workload      fig5 (skip-list inserts, default) | counter | multi\n\
    \  --model         simulator LAUNCHBATCH overhead: tree (default) | fused | none\n\
    \  --p             worker count for both runs (default 4)\n\
    \  --n             operation count (default 200)\n\
    \  --seed          scheduler seed (default 1)\n\
    \  --out           write the combined Chrome trace to PATH\n\
    \  --summary       print aggregated histograms for both runs\n\
    \  --summary-only  print the histograms and skip Chrome JSON emission\n\
    \  --snapshot      stream live counter-delta JSONL to PATH (tail -f it)"

let () =
  let workload = ref Workloads.Fig5 in
  let overhead = ref Sim.Batcher.Tree_setup in
  let p = ref 4 in
  let n = ref 200 in
  let seed = ref 1 in
  let out = ref None in
  let summary = ref false in
  let summary_only = ref false in
  let snapshot = ref None in
  let bad fmt = Printf.ksprintf (fun m -> prerr_endline ("trace: " ^ m); usage (); exit 2) fmt in
  let parse_int name v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> bad "%s expects an integer, got %S" name v
  in
  let args = Array.to_list Sys.argv in
  let rec go = function
    | [] -> ()
    | arg :: rest ->
        let key, inline_value =
          match String.index_opt arg '=' with
          | Some i ->
              ( String.sub arg 0 i,
                Some (String.sub arg (i + 1) (String.length arg - i - 1)) )
          | None -> (arg, None)
        in
        let value rest k =
          match (inline_value, rest) with
          | Some v, _ -> k v rest
          | None, v :: rest -> k v rest
          | None, [] -> bad "%s expects a value" key
        in
        (match key with
        | "--workload" | "-workload" ->
            value rest (fun v rest ->
                (match Workloads.of_string v with
                | Some k -> workload := k
                | None -> bad "unknown workload %S (fig5|counter|multi)" v);
                go rest)
        | "--model" | "-model" ->
            value rest (fun v rest ->
                (match v with
                | "tree" -> overhead := Sim.Batcher.Tree_setup
                | "fused" -> overhead := Sim.Batcher.Fused_setup
                | "none" -> overhead := Sim.Batcher.No_setup
                | _ -> bad "unknown overhead model %S (tree|fused|none)" v);
                go rest)
        | "--p" | "-p" -> value rest (fun v rest -> p := parse_int key v; go rest)
        | "--n" | "-n" -> value rest (fun v rest -> n := parse_int key v; go rest)
        | "--seed" -> value rest (fun v rest -> seed := parse_int key v; go rest)
        | "--out" | "-o" -> value rest (fun v rest -> out := Some v; go rest)
        | "--snapshot" -> value rest (fun v rest -> snapshot := Some v; go rest)
        | "--summary" -> summary := true; go rest
        | "--summary-only" -> summary_only := true; go rest
        | "--help" | "-h" -> usage (); exit 0
        | _ -> bad "unknown option %S" arg)
  in
  go (List.tl args);
  if !p < 1 then bad "--p must be >= 1";
  if !n < 1 then bad "--n must be >= 1";
  exit (main !workload !overhead !p !n !seed !out !summary !summary_only !snapshot)
