(* Health-stream monitor: consumes the JSONL written by
   [Obs.Snapshot] with a [Health] instance attached (one JSON object
   per line, carrying counter totals/deltas plus a ["health"] field),
   renders a status table, and exits non-zero if the stream ever shows
   an invariant violation, a stall-watchdog episode, or a stalled
   structure — the CI teeth behind the always-on monitoring layer.

     dune exec bin/monitor.exe -- soak_health.jsonl
     dune exec bin/monitor.exe -- --follow --interval 0.5 live.jsonl

   One-shot mode (default) reads the file to EOF and renders every
   line; --follow keeps polling for appended lines until none arrive
   for --idle-timeout seconds (a live run that stops writing is
   finished), exiting early as soon as the stream turns unhealthy. *)

module Json = Obs.Json

let usage () =
  prerr_endline
    "usage: monitor [--follow] [--interval S] [--idle-timeout S] [--quiet] FILE\n\n\
     Tails a health snapshot stream (Obs.Snapshot JSONL with a \"health\"\n\
     field) and exits 1 on any invariant violation or stall.\n\
    \  --follow        poll FILE for appended lines instead of one pass\n\
    \  --interval      poll period in seconds (default 0.5)\n\
    \  --idle-timeout  stop following after S seconds with no new lines\n\
    \                  (default 10)\n\
    \  --quiet         print only the final verdict\n\
     Exit status: 0 healthy, 1 unhealthy, 2 usage/IO error."

(* ---- JSON field access ---- *)

let rec path keys j =
  match keys with
  | [] -> Some j
  | k :: rest -> ( match Json.member k j with Some j' -> path rest j' | None -> None)

let jint keys j =
  match path keys j with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let jint0 keys j = Option.value ~default:0 (jint keys j)

let jlist keys j =
  match path keys j with Some (Json.List l) -> l | _ -> []

(* Sum of every numeric field of an object (the violations maps). *)
let obj_sum keys j =
  match path keys j with
  | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (_, v) ->
          match v with
          | Json.Int i -> acc + i
          | Json.Float f -> acc + int_of_float f
          | _ -> acc)
        0 fields
  | _ -> 0

(* ---- per-line digest ---- *)

type digest = {
  seq : int;
  ops_total : int;
  ops_delta : int;
  dropped : int;
  violation_events : int;  (* recorder tag total *)
  inv_violations : int;  (* health.invariants.violations, summed *)
  stalls : int;
  stalled_now : int;  (* structures currently flagged *)
  pending : int;
  max_beat_age_ms : float;
  has_health : bool;
}

let digest_of j =
  let workers = jlist [ "health"; "workers" ] j in
  let structures = jlist [ "health"; "structures" ] j in
  {
    seq = jint0 [ "seq" ] j;
    ops_total = jint0 [ "totals"; "op_done" ] j;
    ops_delta = jint0 [ "deltas"; "op_done" ] j;
    dropped = jint0 [ "dropped" ] j;
    violation_events = jint0 [ "totals"; "violation" ] j;
    inv_violations = obj_sum [ "health"; "invariants"; "violations" ] j;
    stalls = jint0 [ "health"; "stalls" ] j;
    stalled_now =
      List.fold_left
        (fun acc s ->
          match path [ "stalled" ] s with Some (Json.Bool true) -> acc + 1 | _ -> acc)
        0 structures;
    pending =
      List.fold_left (fun acc s -> acc + jint0 [ "pending" ] s) 0 structures;
    max_beat_age_ms =
      List.fold_left
        (fun acc w -> Float.max acc (float_of_int (jint0 [ "beat_age_ns" ] w)))
        0.0 workers
      /. 1.0e6;
    has_health = path [ "health" ] j <> None;
  }

let unhealthy d =
  d.violation_events > 0 || d.inv_violations > 0 || d.stalls > 0
  || d.stalled_now > 0

let describe d =
  String.concat ", "
    (List.filter
       (fun s -> s <> "")
       [
         (if d.violation_events > 0 then
            Printf.sprintf "%d violation events" d.violation_events
          else "");
         (if d.inv_violations > 0 then
            Printf.sprintf "%d checker violations" d.inv_violations
          else "");
         (if d.stalls > 0 then Printf.sprintf "%d stall episodes" d.stalls else "");
         (if d.stalled_now > 0 then
            Printf.sprintf "%d structures stalled" d.stalled_now
          else "");
       ])

(* ---- rendering + accumulation ---- *)

type state = {
  mutable lines : int;
  mutable parse_errors : int;
  mutable rows_since_header : int;
  mutable worst : digest option;  (* first unhealthy digest seen *)
  mutable last : digest option;
  quiet : bool;
}

let header st =
  if not st.quiet && st.rows_since_header = 0 then
    Printf.printf "%6s %10s %8s %6s %6s %7s %7s %10s\n" "seq" "ops" "+ops"
      "viol" "stall" "pend" "drop" "beat(ms)"

let row st d =
  if not st.quiet then begin
    header st;
    st.rows_since_header <- (st.rows_since_header + 1) mod 20;
    Printf.printf "%6d %10d %8d %6d %6d %7d %7d %10.1f%s\n" d.seq d.ops_total
      d.ops_delta
      (d.violation_events + d.inv_violations)
      d.stalls d.pending d.dropped d.max_beat_age_ms
      (if unhealthy d then "  <-- UNHEALTHY" else "")
  end

let feed st line =
  if String.trim line <> "" then begin
    st.lines <- st.lines + 1;
    match Json.parse line with
    | Error e ->
        st.parse_errors <- st.parse_errors + 1;
        if not st.quiet then Printf.printf "parse error on line %d: %s\n" st.lines e
    | Ok j ->
        let d = digest_of j in
        st.last <- Some d;
        row st d;
        if unhealthy d && st.worst = None then begin
          st.worst <- Some d;
          if not st.quiet then
            Printf.printf "first unhealthy sample: seq %d: %s\n" d.seq (describe d)
        end
  end

let verdict st =
  match (st.worst, st.last) with
  | Some d, _ ->
      Printf.printf "UNHEALTHY after %d lines (first at seq %d): %s\n" st.lines
        d.seq (describe d);
      1
  | None, _ when st.parse_errors > 0 ->
      Printf.printf "UNHEALTHY: %d unparseable lines out of %d\n" st.parse_errors
        st.lines;
      1
  | None, _ when st.lines = 0 ->
      Printf.printf "UNHEALTHY: stream is empty\n";
      1
  | None, Some d when not d.has_health ->
      (* Counter-only snapshots: still useful (the violation event tag
         is checked) but say so. *)
      Printf.printf "HEALTHY: %d lines, no violations (no health field)\n"
        st.lines;
      0
  | None, _ ->
      Printf.printf "HEALTHY: %d lines, no violations, no stalls\n" st.lines;
      0

(* ---- file tailing ---- *)

(* Read newly appended COMPLETE lines from [path] past [ofs]; returns
   the new offset (end of the last complete line). *)
let read_new path ofs k =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len <= ofs then ofs
      else begin
        seek_in ic ofs;
        let chunk = really_input_string ic (len - ofs) in
        let last_nl = String.rindex_opt chunk '\n' in
        match last_nl with
        | None -> ofs (* partial line still being written *)
        | Some i ->
            String.split_on_char '\n' (String.sub chunk 0 i)
            |> List.iter k;
            ofs + i + 1
      end)

let () =
  let follow = ref false in
  let interval = ref 0.5 in
  let idle_timeout = ref 10.0 in
  let quiet = ref false in
  let file = ref None in
  let bad fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("monitor: " ^ m);
        usage ();
        exit 2)
      fmt
  in
  let parse_float name v =
    match float_of_string_opt v with
    | Some f when f > 0.0 -> f
    | _ -> bad "%s expects a positive number, got %S" name v
  in
  let args = Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)) in
  let rec go = function
    | [] -> ()
    | arg :: rest ->
        let key, inline_value =
          match String.index_opt arg '=' with
          | Some i ->
              ( String.sub arg 0 i,
                Some (String.sub arg (i + 1) (String.length arg - i - 1)) )
          | None -> (arg, None)
        in
        let value rest k =
          match (inline_value, rest) with
          | Some v, _ -> k v rest
          | None, v :: rest -> k v rest
          | None, [] -> bad "%s expects a value" key
        in
        (match key with
        | "--follow" | "-follow" -> go rest
        | "--quiet" | "-quiet" -> go rest
        | "--interval" | "-interval" ->
            value rest (fun v rest ->
                interval := parse_float key v;
                go rest)
        | "--idle-timeout" | "-idle-timeout" ->
            value rest (fun v rest ->
                idle_timeout := parse_float key v;
                go rest)
        | "--help" | "-help" | "-h" ->
            usage ();
            exit 0
        | _ when String.length key > 0 && key.[0] = '-' ->
            bad "unknown option %s" key
        | _ -> (
            match !file with
            | None ->
                file := Some arg;
                go rest
            | Some _ -> bad "multiple files given"));
        (* flags with no value fall through above; record them here so
           the recursion structure stays uniform *)
        if key = "--follow" || key = "-follow" then follow := true;
        if key = "--quiet" || key = "-quiet" then quiet := true
  in
  go args;
  let path = match !file with Some p -> p | None -> bad "no input file" in
  if not (Sys.file_exists path) then bad "no such file: %s" path;
  let st =
    { lines = 0; parse_errors = 0; rows_since_header = 0; worst = None;
      last = None; quiet = !quiet }
  in
  let ofs = ref 0 in
  ofs := read_new path !ofs (feed st);
  if !follow then begin
    (* Poll [Unix.stat] and only open the file when its mtime or size
       moved — a quiescent stream costs one stat per tick, not an
       open/seek/read (inotify would remove even the stat, but is
       Linux-only and out of scope). A size below the current offset
       means the writer truncated and restarted the file (a new run
       reusing the path): start over from offset 0 rather than waiting
       at a position past EOF forever. *)
    let idle = ref 0.0 in
    let last_mtime = ref neg_infinity and last_size = ref (-1) in
    while !idle < !idle_timeout && st.worst = None do
      Unix.sleepf !interval;
      match Unix.stat path with
      | exception Unix.Unix_error _ ->
          (* Deleted mid-follow; keep waiting for it to reappear. *)
          idle := !idle +. !interval
      | s ->
          let size = s.Unix.st_size in
          if size < !ofs then begin
            if not !quiet then
              Printf.printf "file truncated (%d -> %d bytes); re-reading\n%!"
                !ofs size;
            ofs := 0
          end;
          if s.Unix.st_mtime <> !last_mtime || size <> !last_size then begin
            last_mtime := s.Unix.st_mtime;
            last_size := size;
            let ofs' = read_new path !ofs (feed st) in
            if ofs' > !ofs then idle := 0.0 else idle := !idle +. !interval;
            ofs := ofs'
          end
          else idle := !idle +. !interval
    done
  end;
  exit (verdict st)
