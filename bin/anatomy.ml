(* Per-request tail anatomy: run one traced service point and show
   where the slowest requests actually spent their time.

     dune exec bin/anatomy.exe -- --scenario standard
     dune exec bin/anatomy.exe -- --scenario smoke --exec sim --trace out.json

   The runtime leg runs Rt_driver with request tracing on: every
   request's release/start/submit/publish/batch/done milestones are
   captured (Obs.Reqtrace), the slowest-K reservoir keeps the K worst
   per op class exactly, and each printed span decomposes its measured
   end-to-end latency into queue-wait, scheduling, pending-wait,
   batch-exec and the post-batch residual — summing exactly to the
   latency, which this tool re-verifies over every captured request
   and reports with exit 1 on any breach. The per-request
   batches-while-pending column (m) is the empirical Lemma-2 figure;
   its per-class max is summarized against the paper's dual-deque
   reference of 2 (reported, not asserted — see DESIGN.md §14).

   --trace OUT.json exports the sampled spans plus every slowest-K
   span as Perfetto trace events: per-class request tracks carry the
   phase slices, worker tracks carry the batch-exec slices, and flow
   arrows link each request's chain across tracks. *)

let usage () =
  prerr_endline
    "usage: anatomy [options]\n\n\
     Runs one traced service point and prints the slowest requests per\n\
     op class with exact phase decompositions.\n\
    \  --scenario NAME  scenario (default standard; see service --list)\n\
    \  --exec MODE      runtime | sim (default runtime)\n\
    \  --mode NAME      batch-path mode for the runtime leg\n\
    \                   (pending_array | worker_id | par_combine |\n\
    \                   atomic_list; default pending_array)\n\
    \  --shards K       runtime shard count (default: scenario's largest)\n\
    \  --workers N      runtime pool size\n\
    \  --duration S     runtime measured seconds (default: scenario's)\n\
    \  --p N            sim worker count (default: scenario's first)\n\
    \  --top N          slowest requests to print per class (default 10)\n\
    \  --trace PATH     write sampled + slowest-K spans as Perfetto JSON\n\
    \  --quiet          print only the summary and any breach\n\
     Exit status: 0 ok, 1 a span's phases failed to sum to its measured\n\
     latency (conservation breach), 2 usage error."

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("anatomy: " ^ m);
      usage ();
      exit 2)
    fmt

let class_of_index = [| Svc.Gen.Get; Svc.Gen.Put; Svc.Gen.Delete; Svc.Gen.Range |]
let class_name c = Svc.Gen.class_name class_of_index.(c)
let us ns = float_of_int ns /. 1e3

let mode_label = function
  | 0 -> "pending_array"
  | 1 -> "worker_id"
  | 2 -> "par_combine"
  | 3 -> "atomic_list"
  | _ -> "?"

let print_span (s : Obs.Reqtrace.span) =
  Printf.printf
    "    #%-7d %8.1fus = q %7.1f + sched %7.1f + pend %7.1f + exec %7.1f \
     + post %7.1f  m=%-2d%s%s  w%d>w%d>w%d\n"
    s.Obs.Reqtrace.token
    (us s.Obs.Reqtrace.latency_ns)
    (us s.Obs.Reqtrace.queue_ns)
    (us s.Obs.Reqtrace.sched_pre_ns)
    (us s.Obs.Reqtrace.pending_ns)
    (us s.Obs.Reqtrace.exec_ns)
    (us s.Obs.Reqtrace.sched_post_ns)
    s.Obs.Reqtrace.batches_seen
    (if s.Obs.Reqtrace.ovf then
       if s.Obs.Reqtrace.displaced then " ovf(displaced)" else " ovf"
     else "")
    (if s.Obs.Reqtrace.ovf_ns > 0 then
       Printf.sprintf " ovf_wait=%.1fus" (us s.Obs.Reqtrace.ovf_ns)
     else "")
    s.Obs.Reqtrace.w_start s.Obs.Reqtrace.w_batch s.Obs.Reqtrace.w_done

(* ---- Perfetto export ---- *)

let j_ev fields = Obs.Json.Obj fields

let meta ~pid ?tid ~name what =
  j_ev
    ([
       ("name", Obs.Json.Str what);
       ("ph", Obs.Json.Str "M");
       ("pid", Obs.Json.Int pid);
     ]
    @ (match tid with Some t -> [ ("tid", Obs.Json.Int t) ] | None -> [])
    @ [ ("args", Obs.Json.Obj [ ("name", Obs.Json.Str name) ]) ])

let slice ~pid ~tid ~name ~ts_us ~dur_us ?(args = []) () =
  j_ev
    [
      ("name", Obs.Json.Str name);
      ("cat", Obs.Json.Str "req");
      ("ph", Obs.Json.Str "X");
      ("ts", Obs.Json.Float ts_us);
      ("dur", Obs.Json.Float dur_us);
      ("pid", Obs.Json.Int pid);
      ("tid", Obs.Json.Int tid);
      ("args", Obs.Json.Obj args);
    ]

let flow ~ph ~id ~pid ~tid ~ts_us =
  j_ev
    ([
       ("name", Obs.Json.Str "req");
       ("cat", Obs.Json.Str "req");
       ("ph", Obs.Json.Str ph);
       ("id", Obs.Json.Int id);
       ("ts", Obs.Json.Float ts_us);
       ("pid", Obs.Json.Int pid);
       ("tid", Obs.Json.Int tid);
     ]
    @ if ph = "f" then [ ("bp", Obs.Json.Str "e") ] else [])

(* One request = up to five phase slices on its class track, a
   batch-exec slice on the stamping worker's track, and a flow arrow
   linking the two. ts is relative to [t_base] (the earliest exported
   arrival) in microseconds. *)
let span_events ~t_base (s : Obs.Reqtrace.span) =
  let cls_tid = s.Obs.Reqtrace.cls in
  let rel ns = float_of_int (ns - t_base) /. 1e3 in
  let t0 = s.Obs.Reqtrace.arrive_ns in
  let args =
    [
      ("token", Obs.Json.Int s.Obs.Reqtrace.token);
      ("sid", Obs.Json.Int s.Obs.Reqtrace.sid);
      ("mode", Obs.Json.Str (mode_label s.Obs.Reqtrace.mode));
      ("batches_seen", Obs.Json.Int s.Obs.Reqtrace.batches_seen);
      ("ovf", Obs.Json.Bool s.Obs.Reqtrace.ovf);
      ("displaced", Obs.Json.Bool s.Obs.Reqtrace.displaced);
    ]
  in
  let phases =
    [
      ("queue", t0, s.Obs.Reqtrace.queue_ns);
      ("sched", t0 + s.Obs.Reqtrace.queue_ns, s.Obs.Reqtrace.sched_pre_ns);
      ( "pending",
        t0 + s.Obs.Reqtrace.queue_ns + s.Obs.Reqtrace.sched_pre_ns,
        s.Obs.Reqtrace.pending_ns );
      ( "exec",
        t0 + s.Obs.Reqtrace.queue_ns + s.Obs.Reqtrace.sched_pre_ns
        + s.Obs.Reqtrace.pending_ns,
        s.Obs.Reqtrace.exec_ns );
      ( "sched_post",
        t0 + s.Obs.Reqtrace.queue_ns + s.Obs.Reqtrace.sched_pre_ns
        + s.Obs.Reqtrace.pending_ns + s.Obs.Reqtrace.exec_ns,
        s.Obs.Reqtrace.sched_post_ns );
    ]
  in
  let exec_at =
    t0 + s.Obs.Reqtrace.queue_ns + s.Obs.Reqtrace.sched_pre_ns
    + s.Obs.Reqtrace.pending_ns
  in
  List.filter_map
    (fun (name, at, dur) ->
      if dur <= 0 then None
      else
        Some
          (slice ~pid:0 ~tid:cls_tid ~name ~ts_us:(rel at)
             ~dur_us:(float_of_int dur /. 1e3)
             ~args ()))
    phases
  @ [
      slice ~pid:1 ~tid:s.Obs.Reqtrace.w_batch
        ~name:(Printf.sprintf "batch sid=%d" s.Obs.Reqtrace.sid)
        ~ts_us:(rel exec_at)
        ~dur_us:(float_of_int (max 1 s.Obs.Reqtrace.exec_ns) /. 1e3)
        ~args ();
      flow ~ph:"s" ~id:s.Obs.Reqtrace.token ~pid:0 ~tid:cls_tid
        ~ts_us:(rel t0);
      flow ~ph:"f" ~id:s.Obs.Reqtrace.token ~pid:1
        ~tid:s.Obs.Reqtrace.w_batch ~ts_us:(rel exec_at);
    ]

let write_trace ~path ~workers spans =
  match spans with
  | [] -> Printf.printf "[anatomy] no spans to export; %s not written\n" path
  | _ ->
      let t_base =
        List.fold_left
          (fun acc (s : Obs.Reqtrace.span) ->
            min acc s.Obs.Reqtrace.arrive_ns)
          max_int spans
      in
      let metas =
        meta ~pid:0 ~name:"requests (per op class)" "process_name"
        :: List.init (Array.length class_of_index) (fun c ->
               meta ~pid:0 ~tid:c ~name:(class_name c) "thread_name")
        @ meta ~pid:1 ~name:"workers (batch exec)" "process_name"
          :: List.init workers (fun w ->
                 meta ~pid:1 ~tid:w
                   ~name:(Printf.sprintf "worker %d" w)
                   "thread_name")
      in
      let events =
        metas @ List.concat_map (span_events ~t_base) spans
      in
      let json =
        Obs.Json.Obj
          [
            ("traceEvents", Obs.Json.List events);
            ("displayTimeUnit", Obs.Json.Str "ms");
          ]
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Obs.Json.to_string json));
      Printf.printf "[anatomy] wrote %d trace events for %d spans to %s\n"
        (List.length events) (List.length spans) path

let () =
  let scenario = ref "standard" in
  let exec = ref "runtime" in
  let mode = ref Runtime.Batcher_rt.Faa_array in
  let shards = ref None in
  let workers = ref None in
  let duration = ref None in
  let p = ref None in
  let top = ref 10 in
  let trace_path = ref None in
  let quiet = ref false in
  let args = Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)) in
  let rec go = function
    | [] -> ()
    | "--scenario" :: v :: rest ->
        scenario := v;
        go rest
    | "--exec" :: v :: rest ->
        if v <> "runtime" && v <> "sim" then
          die "--exec expects runtime|sim, got %S" v;
        exec := v;
        go rest
    | "--mode" :: v :: rest -> (
        match Runtime.Batcher_rt.mode_of_string v with
        | Some m ->
            mode := m;
            go rest
        | None -> die "--mode expects a batch-path mode, got %S" v)
    | "--shards" :: v :: rest -> (
        match int_of_string_opt v with
        | Some k when k >= 1 ->
            shards := Some k;
            go rest
        | _ -> die "--shards expects a positive integer, got %S" v)
    | "--workers" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            workers := Some n;
            go rest
        | _ -> die "--workers expects a positive integer, got %S" v)
    | "--duration" :: v :: rest -> (
        match float_of_string_opt v with
        | Some d when d > 0.0 ->
            duration := Some d;
            go rest
        | _ -> die "--duration expects positive seconds, got %S" v)
    | "--p" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            p := Some n;
            go rest
        | _ -> die "--p expects a positive integer, got %S" v)
    | "--top" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            top := n;
            go rest
        | _ -> die "--top expects a positive integer, got %S" v)
    | "--trace" :: v :: rest ->
        trace_path := Some v;
        go rest
    | "--quiet" :: rest ->
        quiet := true;
        go rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ -> die "unknown argument %s" arg
  in
  go args;
  let sc =
    match Svc.Scenario.find !scenario with
    | Some sc -> sc
    | None ->
        die "unknown scenario %S (have: %s)" !scenario
          (String.concat ", " (Svc.Scenario.names ()))
  in
  let trace, n_workers, label =
    if !exec = "runtime" then begin
      let shards =
        match !shards with
        | Some k -> k
        | None -> (
            match List.rev sc.Svc.Scenario.rt_shards with
            | k :: _ -> k
            | [] -> 1)
      in
      let pt =
        Svc.Rt_driver.run_point ?workers:!workers ?duration_s:!duration
          ~mode:!mode ~trace:true sc ~shards
      in
      if not !quiet then
        Printf.printf
          "[anatomy] runtime: %s K=%d P=%d mode=%s n=%d goodput=%.0f req/s\n"
          sc.Svc.Scenario.name shards pt.Svc.Rt_driver.workers
          (Runtime.Batcher_rt.mode_name !mode)
          pt.Svc.Rt_driver.requests pt.Svc.Rt_driver.goodput;
      ( pt.Svc.Rt_driver.trace,
        pt.Svc.Rt_driver.workers,
        Printf.sprintf "%s/runtime" sc.Svc.Scenario.name )
    end
    else begin
      let p =
        match !p with
        | Some n -> n
        | None -> (
            match sc.Svc.Scenario.sim_p with n :: _ -> n | [] -> 1)
      in
      let pt = Svc.Sim_driver.run_point ~trace:true sc ~p in
      if not !quiet then
        Printf.printf "[anatomy] sim: %s P=%d n=%d goodput=%.0f req/s\n"
          sc.Svc.Scenario.name p pt.Svc.Sim_driver.requests
          pt.Svc.Sim_driver.goodput;
      (pt.Svc.Sim_driver.trace, 1, Printf.sprintf "%s/sim" sc.Svc.Scenario.name)
    end
  in
  let completed = Obs.Reqtrace.completed trace in
  Printf.printf "[anatomy] %s: %d completed spans captured\n%!" label completed;
  (* Per-class slowest-K tables with exact phase decompositions. *)
  let all_slowest = ref [] in
  for c = 0 to Svc.Gen.n_classes - 1 do
    let spans = Obs.Reqtrace.slowest ~cls:c trace in
    all_slowest := !all_slowest @ spans;
    if spans <> [] then begin
      let tt = Obs.Reqtrace.totals ~cls:c trace in
      let max_m =
        List.fold_left
          (fun acc (s : Obs.Reqtrace.span) ->
            max acc s.Obs.Reqtrace.batches_seen)
          0 spans
      in
      Printf.printf
        "  %s: n=%d slowest %d of %d captured, max batches-while-pending \
         (slowest set) m=%d%s\n"
        (class_name c) tt.Obs.Reqtrace.n
        (min !top (List.length spans))
        tt.Obs.Reqtrace.n max_m
        (if max_m > 2 then " (> paper's dual-deque 2; helper-lock runtime)"
         else "");
      if not !quiet then
        List.iteri
          (fun i s -> if i < !top then print_span s)
          spans
    end
  done;
  (* Aggregate attribution: where did all the latency go? *)
  let tt = Obs.Reqtrace.totals trace in
  if tt.Obs.Reqtrace.n > 0 then begin
    Printf.printf "  attribution over %d spans:" tt.Obs.Reqtrace.n;
    List.iter
      (fun (name, share) -> Printf.printf "  %s %.1f%%" name (100.0 *. share))
      (Obs.Reqtrace.shares tt);
    print_newline ()
  end;
  (match !trace_path with
  | None -> ()
  | Some path ->
      (* Export the sampled timeline plus every slowest-K span (the
         tail is never thinned away), deduplicated by token. *)
      let seen = Hashtbl.create 64 in
      let keep (s : Obs.Reqtrace.span) =
        if Hashtbl.mem seen s.Obs.Reqtrace.token then false
        else begin
          Hashtbl.add seen s.Obs.Reqtrace.token ();
          true
        end
      in
      let sampled = ref [] in
      for tok = Obs.Reqtrace.capacity trace - 1 downto 0 do
        match Obs.Reqtrace.span trace tok with
        | Some s when s.Obs.Reqtrace.sampled -> sampled := s :: !sampled
        | _ -> ()
      done;
      let spans = List.filter keep (!all_slowest @ !sampled) in
      write_trace ~path ~workers:n_workers spans);
  match Obs.Reqtrace.check trace with
  | Ok () ->
      Printf.printf
        "[anatomy] conservation OK: every span's phases sum to its latency\n"
  | Error e ->
      Printf.printf "[anatomy] FAIL conservation: %s\n" e;
      exit 1
