(* Open-loop KV-service runner: one named scenario, both executions.

     dune exec bin/service.exe -- --scenario standard
     dune exec bin/service.exe -- --scenario smoke --exec sim
     dune exec bin/service.exe -- --list

   The sim leg sweeps the scenario's worker counts on the virtual
   clock (Sim.Openloop) and cross-checks every point's per-request
   waits against the composed Theorem-1 bound terms
   (Check.Bound.service_check); the runtime leg is a timed open-loop
   run over Pool/Shard_rt per shard count, every request measured from
   its scheduled arrival stamp. SVC rows are merged into the results
   file, preserving other experiments and other scenarios' rows. *)

let usage () =
  prerr_endline
    "usage: service [options]\n\n\
     Runs one service scenario open-loop and merges SVC rows into the\n\
     results file.\n\
    \  --scenario NAME  scenario to run (default standard; see --list)\n\
    \  --list           list scenarios and exit\n\
    \  --exec MODE      sim | runtime | both (default both)\n\
    \  --workers N      runtime pool size (default: recommended count,\n\
    \                   min 2 -- the dispatcher owns a worker)\n\
    \  --duration S     override the runtime leg's measured seconds\n\
    \  --seed N         override the scenario's seed\n\
    \  --out PATH       results file (default BENCH_results.json)\n\
    \  --snapshot PATH  stream Obs.Snapshot JSONL (runtime leg) to PATH\n\
    \  --mode NAME|all  batch-path mode for the runtime leg's shards\n\
    \                   (pending_array | worker_id | par_combine |\n\
    \                   atomic_list; all = head-to-head sweep over every\n\
    \                   mode; default pending_array)\n\
    \  --causal         instead of the normal legs: run the causal\n\
    \                   what-if grid (virtual speedups per phase) on\n\
    \                   the selected executions and merge CAUSAL rows;\n\
    \                   bin/causal.exe is the full-featured front end\n\
    \  --load-sweep     instead of the normal legs: sweep the runtime\n\
    \                   leg over offered-load multipliers (x0.25..x4 of\n\
    \                   rt_rate) per selected mode, find the throughput\n\
    \                   knee, and merge SVC_LOAD rows (latency digest +\n\
    \                   per-phase latency shares per point) into the\n\
    \                   results file\n\
    \  --mults LIST     comma-separated multipliers for --load-sweep\n\
    \                   (default 0.25,0.5,1,2,4)\n\
    \  --quiet          print only failures and the final summary\n\
     Exit status: 0 ok, 1 a sim point escaped the Theorem-1 wait\n\
     budget or a load-sweep/causal point breached span conservation\n\
     or bound evaluation, 2 usage error."

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("service: " ^ m);
      usage ();
      exit 2)
    fmt

let kns ns = Printf.sprintf "%.1f" (ns /. 1e3)

let print_classes ~quiet classes =
  if not quiet then
    List.iter
      (fun (c : Svc.Latency.class_stats) ->
        Printf.printf "    %-6s n=%-7d p50=%sus p99=%sus p999=%sus max=%sus\n"
          c.Svc.Latency.cls c.Svc.Latency.requests
          (kns c.Svc.Latency.p50_ns)
          (kns c.Svc.Latency.p99_ns)
          (kns c.Svc.Latency.p999_ns)
          (kns c.Svc.Latency.max_ns))
      classes

let () =
  let scenario = ref "standard" in
  let list_only = ref false in
  let exec = ref "both" in
  let workers = ref None in
  let duration = ref None in
  let seed = ref None in
  let out = ref "BENCH_results.json" in
  let snapshot = ref None in
  let modes = ref [ Runtime.Batcher_rt.Faa_array ] in
  let causal = ref false in
  let load_sweep = ref false in
  let mults = ref None in
  let quiet = ref false in
  let args = Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)) in
  let rec go = function
    | [] -> ()
    | "--list" :: rest ->
        list_only := true;
        go rest
    | "--quiet" :: rest ->
        quiet := true;
        go rest
    | "--scenario" :: v :: rest ->
        scenario := v;
        go rest
    | "--exec" :: v :: rest ->
        if v <> "sim" && v <> "runtime" && v <> "both" then
          die "--exec expects sim|runtime|both, got %S" v;
        exec := v;
        go rest
    | "--workers" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            workers := Some n;
            go rest
        | _ -> die "--workers expects a positive integer, got %S" v)
    | "--duration" :: v :: rest -> (
        match float_of_string_opt v with
        | Some d when d > 0.0 ->
            duration := Some d;
            go rest
        | _ -> die "--duration expects positive seconds, got %S" v)
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n ->
            seed := Some n;
            go rest
        | _ -> die "--seed expects an integer, got %S" v)
    | "--out" :: v :: rest ->
        out := v;
        go rest
    | "--snapshot" :: v :: rest ->
        snapshot := Some v;
        go rest
    | "--mode" :: v :: rest ->
        (if v = "all" then modes := Runtime.Batcher_rt.all_modes
         else
           match Runtime.Batcher_rt.mode_of_string v with
           | Some m -> modes := [ m ]
           | None -> die "--mode expects a batch-path mode or all, got %S" v);
        go rest
    | "--causal" :: rest ->
        causal := true;
        go rest
    | "--load-sweep" :: rest ->
        load_sweep := true;
        go rest
    | "--mults" :: v :: rest ->
        let parsed =
          List.map
            (fun s ->
              match float_of_string_opt (String.trim s) with
              | Some m when m > 0.0 -> m
              | _ -> die "--mults expects positive numbers, got %S" s)
            (String.split_on_char ',' v)
        in
        if parsed = [] then die "--mults expects at least one multiplier";
        mults := Some parsed;
        go rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ -> die "unknown argument %s" arg
  in
  go args;
  if !list_only then begin
    List.iter
      (fun (s : Svc.Scenario.t) ->
        Printf.printf "%-14s %s\n" s.Svc.Scenario.name
          s.Svc.Scenario.descr)
      Svc.Scenario.all;
    exit 0
  end;
  let sc =
    match Svc.Scenario.find !scenario with
    | Some sc -> sc
    | None ->
        die "unknown scenario %S (have: %s)" !scenario
          (String.concat ", " (Svc.Scenario.names ()))
  in
  let sc =
    match !seed with
    | None -> sc
    | Some s -> { sc with Svc.Scenario.seed = s }
  in
  if !causal then begin
    (* The causal what-if grid rides on the same scenario/report
       plumbing as the normal legs; bin/causal.exe is the
       full-featured front end (per-leg factors, --p, --shards). *)
    let rows = ref [] in
    let errors = ref [] in
    let leg r =
      print_string (Obs.Causal.render r.Svc.Causal.profile);
      rows := !rows @ r.Svc.Causal.rows;
      errors := !errors @ r.Svc.Causal.errors
    in
    if !exec = "sim" || !exec = "both" then begin
      if not !quiet then
        Printf.printf "[svc] causal sim leg: %s\n%!" sc.Svc.Scenario.name;
      leg (Svc.Causal.run_sim sc)
    end;
    if !exec = "runtime" || !exec = "both" then begin
      if not !quiet then
        Printf.printf "[svc] causal runtime leg: %s\n%!" sc.Svc.Scenario.name;
      leg
        (Svc.Causal.run_rt ?workers:!workers ?duration_s:!duration
           ~mode:(List.hd !modes) sc)
    end;
    Svc.Report.merge_causal ~path:!out ~scenario:sc.Svc.Scenario.name !rows;
    Printf.printf "[svc] merged %d CAUSAL rows for %s into %s\n%!"
      (List.length !rows) sc.Svc.Scenario.name !out;
    match !errors with
    | [] -> exit 0
    | fails ->
        List.iter (fun f -> Printf.printf "[svc] FAIL causal: %s\n" f) fails;
        exit 1
  end;
  if !load_sweep then begin
    if not !quiet then
      Printf.printf "[svc] load sweep: %s, modes %s, base rate %.0f req/s\n%!"
        sc.Svc.Scenario.name
        (String.concat ","
           (List.map Runtime.Batcher_rt.mode_name !modes))
        sc.Svc.Scenario.rt_rate;
    let sw =
      Svc.Sweep.run ?mults:!mults ~modes:!modes ?workers:!workers
        ?duration_s:!duration sc
    in
    List.iter
      (fun (p : Svc.Sweep.point) ->
        if not !quiet then begin
          let all = Svc.Latency.all_of p.Svc.Sweep.pt.Svc.Rt_driver.classes in
          Printf.printf
            "  mode=%-13s K=%d x%-4g offered=%7.0f goodput=%7.0f req/s \
             (%.0f%%) p99=%.1fus"
            (Runtime.Batcher_rt.mode_name p.Svc.Sweep.mode)
            p.Svc.Sweep.shards p.Svc.Sweep.mult p.Svc.Sweep.offered_req_s
            p.Svc.Sweep.pt.Svc.Rt_driver.goodput
            (100.0 *. p.Svc.Sweep.pt.Svc.Rt_driver.goodput
            /. p.Svc.Sweep.offered_req_s)
            (all.Svc.Latency.p99_ns /. 1e3);
          List.iter
            (fun (name, v) -> Printf.printf " %s=%.0f%%" name (100.0 *. v))
            p.Svc.Sweep.shares;
          print_newline ()
        end)
      sw.Svc.Sweep.points;
    List.iter
      (fun (kn : Svc.Sweep.knee) ->
        Printf.printf "  knee: mode=%-13s K=%d %s\n"
          (Runtime.Batcher_rt.mode_name kn.Svc.Sweep.k_mode)
          kn.Svc.Sweep.k_shards
          (if kn.Svc.Sweep.knee_req_s > 0.0 then
             Printf.sprintf "%.0f req/s (x%g)" kn.Svc.Sweep.knee_req_s
               kn.Svc.Sweep.knee_mult
           else "below the lowest swept rate"))
      sw.Svc.Sweep.knees;
    (* Per-point span conservation is the sweep's self-check: the phase
       shares are only meaningful if every span's phases sum to its
       measured latency. *)
    let breaches =
      List.filter_map
        (fun (p : Svc.Sweep.point) ->
          match Obs.Reqtrace.check p.Svc.Sweep.pt.Svc.Rt_driver.trace with
          | Ok () -> None
          | Error e ->
              Some
                (Printf.sprintf "mode=%s K=%d x%g: %s"
                   (Runtime.Batcher_rt.mode_name p.Svc.Sweep.mode)
                   p.Svc.Sweep.shards p.Svc.Sweep.mult e))
        sw.Svc.Sweep.points
    in
    let rows = Svc.Sweep.rows sw in
    Svc.Report.merge_svc_load ~path:!out ~scenario:sc.Svc.Scenario.name rows;
    Printf.printf "[svc] merged %d SVC_LOAD rows for %s into %s\n%!"
      (List.length rows) sc.Svc.Scenario.name !out;
    match breaches with
    | [] -> exit 0
    | fails ->
        List.iter
          (fun f -> Printf.printf "[svc] FAIL span conservation: %s\n" f)
          fails;
        exit 1
  end;
  let bound_failures = ref [] in
  let all_rows = ref [] in
  if !exec = "sim" || !exec = "both" then begin
    if not !quiet then
      Printf.printf "[svc] sim leg: %s, shards=%d, %d requests, P sweep %s\n%!"
        sc.Svc.Scenario.name sc.Svc.Scenario.sim_shards
        sc.Svc.Scenario.sim_requests
        (String.concat ","
           (List.map string_of_int sc.Svc.Scenario.sim_p));
    List.iter
      (fun (pt : Svc.Sim_driver.point) ->
        if not !quiet then
          Printf.printf
            "  P=%-3d goodput=%.0f req/s batches=%d max_batch=%d m=%d \
             in_system<=%d %s\n"
            pt.Svc.Sim_driver.p pt.Svc.Sim_driver.goodput
            pt.Svc.Sim_driver.batches pt.Svc.Sim_driver.max_batch
            pt.Svc.Sim_driver.max_batches_seen
            pt.Svc.Sim_driver.max_in_system
            (match pt.Svc.Sim_driver.bound with
            | Ok () -> "bound OK"
            | Error _ -> "bound FAIL");
        print_classes ~quiet:!quiet pt.Svc.Sim_driver.classes;
        (match pt.Svc.Sim_driver.bound with
        | Ok () -> ()
        | Error e ->
            bound_failures :=
              Printf.sprintf "P=%d: %s" pt.Svc.Sim_driver.p e
              :: !bound_failures);
        all_rows := !all_rows @ Svc.Report.rows_of_sim sc pt)
      (Svc.Sim_driver.run sc)
  end;
  if !exec = "runtime" || !exec = "both" then begin
    if not !quiet then
      Printf.printf "[svc] runtime leg: %s, K sweep %s, %.1fs measured\n%!"
        sc.Svc.Scenario.name
        (String.concat ","
           (List.map string_of_int sc.Svc.Scenario.rt_shards))
        (match !duration with
        | Some d -> d
        | None -> sc.Svc.Scenario.duration_s);
    List.iter
      (fun mode ->
        List.iter
          (fun (pt : Svc.Rt_driver.point) ->
            if not !quiet then
              Printf.printf
                "  K=%-2d P=%d mode=%-13s n=%d goodput=%.0f req/s batches=%d \
                 max_batch=%d stalls=%d burns=%d\n"
                pt.Svc.Rt_driver.shards pt.Svc.Rt_driver.workers
                (Runtime.Batcher_rt.mode_name pt.Svc.Rt_driver.mode)
                pt.Svc.Rt_driver.requests pt.Svc.Rt_driver.goodput
                pt.Svc.Rt_driver.batches pt.Svc.Rt_driver.max_batch
                pt.Svc.Rt_driver.stalls pt.Svc.Rt_driver.slo_burns;
            print_classes ~quiet:!quiet pt.Svc.Rt_driver.classes;
            all_rows := !all_rows @ Svc.Report.rows_of_rt sc pt)
          (Svc.Rt_driver.run ?workers:!workers ?snapshot_path:!snapshot
             ?duration_s:!duration ~mode sc))
      !modes
  end;
  Svc.Report.merge_svc ~path:!out ~scenario:sc.Svc.Scenario.name
    !all_rows;
  Printf.printf "[svc] merged %d SVC rows for %s into %s\n%!"
    (List.length !all_rows) sc.Svc.Scenario.name !out;
  match !bound_failures with
  | [] -> ()
  | fails ->
      List.iter
        (fun f -> Printf.printf "[svc] FAIL Theorem-1 wait budget: %s\n" f)
        (List.rev fails);
      exit 1
