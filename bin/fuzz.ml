(* Fuzzing driver over lib/check: a conformance pass (every batched
   structure against its sequential oracle, through both the real
   runtime and the simulator), a sharded conformance pass (each
   shardable structure through K real batcher instances with routing,
   per-shard oracle and cross-shard merge checks), and a
   schedule-configuration sweep (random core DAGs x random scheduler
   ablations — including a shard_k rotation — validated against the
   paper's protocol rules and the per-shard composed Theorem-1 bound).
   Failing cases are shrunk and printed as ready-to-paste OCaml.
   Exits 1 on any failure — suitable for CI and the @fuzz-smoke /
   @shard-smoke aliases. *)

open Cmdliner

(* Runtime-side ablations rotated across the conformance subjects: the
   default faa-array batch path under the default and two extreme
   backoff policies (all-spin, sleep-almost-immediately with a single
   steal try per round), plus the three alternative batch-path modes
   (paper-verbatim worker-id slots, parallel combining, and the legacy
   atomic-list submission stack). Extreme idle policies change
   steal/launch interleavings, not results — any divergence is a real
   runtime bug. *)
let conf_ablations =
  let open Runtime.Pool in
  [
    ("", None, Runtime.Batcher_rt.Faa_array);
    ( " [spin]",
      Some { default_backoff with spin_limit = 1_000_000; burst_limit = 1_000_000 },
      Runtime.Batcher_rt.Faa_array );
    ( " [sleepy]",
      Some
        {
          default_backoff with
          spin_limit = 1;
          burst_limit = 2;
          sleep_min = 0.000_01;
          steal_tries = 1;
        },
      Runtime.Batcher_rt.Faa_array );
    (" [worker]", None, Runtime.Batcher_rt.Worker_id);
    (" [combine]", None, Runtime.Batcher_rt.Par_combine);
    (" [list]", None, Runtime.Batcher_rt.Atomic_list);
  ]

let run_conformance ~n_ops ~seed ~verbose =
  let failures = ref 0 in
  List.iteri
    (fun i subject ->
      let name = Check.Conformance.subject_name subject in
      let tag, backoff, mode =
        List.nth conf_ablations (i mod List.length conf_ablations)
      in
      match Check.Conformance.run ~n_ops ~seed ?backoff ~mode subject with
      | Ok r ->
          if verbose then
            Printf.printf
              "conformance %-10s%s ok  (runtime: %d batches, max %d; sim: %d \
               batches, makespan %d)\n\
               %!"
              name tag r.Check.Conformance.rt_batches r.rt_max_batch
              r.sim_batches r.sim_makespan
      | Error e ->
          incr failures;
          Printf.printf "conformance %-10s%s FAIL: %s\n%!" name tag e)
    Check.Conformance.subjects;
  (match Check.Conformance.order_list_check ~n:n_ops ~seed () with
  | Ok () -> if verbose then Printf.printf "conformance order_list ok\n%!"
  | Error e ->
      incr failures;
      Printf.printf "conformance order_list FAIL: %s\n%!" e);
  !failures

(* Sharded conformance: each shardable structure through K real batcher
   instances (K = 1 pins the combinator's identity case), with routing,
   per-shard oracle replay and cross-shard merge checks — see
   [Check.Shard_conf]. *)
let run_shard_conformance ~n_ops ~seed ~verbose =
  let failures = ref 0 in
  List.iter
    (fun name ->
      List.iter
        (fun shards ->
          match Check.Shard_conf.run ~n_ops ~seed ~name ~shards () with
          | Ok r ->
              if verbose then
                Printf.printf
                  "sharded    %-10s K=%d ok  (%d ops, %d batches, max %d)\n%!"
                  name shards r.Check.Shard_conf.sc_ops r.sc_batches
                  r.sc_max_batch
          | Error e ->
              incr failures;
              Printf.printf "sharded    %-10s K=%d FAIL: %s\n%!" name shards e)
        [ 1; 2; 4 ])
    Check.Shard_conf.structures;
  !failures

let run_sweep ~seeds ~start ~max_p ~max_size ~bound_factor ~deadline ~shard_k
    ~verbose =
  let should_stop =
    match deadline with
    | None -> fun () -> false
    | Some d -> fun () -> Unix.gettimeofday () > d
  in
  let on_case i case =
    if verbose then
      Printf.printf "case %4d: %s\n%!" (start + i)
        (Check.Schedule_fuzz.show_case case)
    else if (i + 1) mod 50 = 0 then Printf.printf "  ... %d cases\n%!" (i + 1)
  in
  let seed_list = List.init seeds (fun i -> start + i) in
  (* shard_k = 0 leaves the generator's own rotation (mostly unsharded,
     some K = 2 and K = 4 legs) in place; > 0 forces every case to K
     shards, the fuzzer's shard ablation. Either way each case's
     schedule is checked against the per-shard composed Theorem-1 bound
     and per-shard conservation in [Check.Bound.cross_check]. *)
  let map_case =
    if shard_k <= 0 then fun c -> c
    else fun c -> { c with Check.Schedule_fuzz.shard_k }
  in
  (* rt_conf: every case additionally runs its structure and seed
     through the real runtime under the case's rotated batch-path mode
     ([rt_mode]), conformance-checked against the sequential oracle. *)
  let cases_run, fails =
    Check.Schedule_fuzz.sweep ~bound_factor ~rt_conf:true ~max_p ~max_size
      ~should_stop ~on_case ~map_case ~seeds:seed_list ()
  in
  Printf.printf "schedule fuzz: %d/%d cases run, %d failure(s)\n%!" cases_run
    seeds (List.length fails);
  List.iter
    (fun (f : Check.Schedule_fuzz.failure) ->
      Printf.printf "\nFAILURE on %s\n  error: %s\n"
        (Check.Schedule_fuzz.show_case f.f_case)
        f.f_error;
      Printf.printf "shrunk to %s\n  error: %s\n"
        (Check.Schedule_fuzz.show_case f.f_shrunk)
        f.f_shrunk_error;
      Printf.printf "reproducer:\n%s\n%!"
        (Check.Schedule_fuzz.to_ocaml f.f_shrunk))
    fails;
  List.length fails

let main seeds start max_p max_size bound_factor time_budget conformance_ops
    skip_conformance skip_shard_conformance skip_schedule shard_k verbose =
  let seeds = max 0 seeds in
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) time_budget
  in
  let conf_failures =
    if skip_conformance then 0
    else begin
      Printf.printf "== conformance: %d structures + order_list ==\n%!"
        (List.length Check.Conformance.subjects);
      run_conformance ~n_ops:conformance_ops ~seed:1 ~verbose
    end
  in
  let shard_conf_failures =
    if skip_shard_conformance then 0
    else begin
      Printf.printf "== sharded conformance: %d structures x K in {1,2,4} ==\n%!"
        (List.length Check.Shard_conf.structures);
      run_shard_conformance ~n_ops:conformance_ops ~seed:1 ~verbose
    end
  in
  let sweep_failures =
    if skip_schedule then 0
    else begin
      Printf.printf "== schedule fuzz: seeds %d..%d%s ==\n%!" start
        (start + seeds - 1)
        (if shard_k > 0 then Printf.sprintf " (forced shard_k=%d)" shard_k
         else "");
      run_sweep ~seeds ~start ~max_p ~max_size ~bound_factor ~deadline
        ~shard_k ~verbose
    end
  in
  let total = conf_failures + shard_conf_failures + sweep_failures in
  if total = 0 then begin
    Printf.printf "all checks passed\n%!";
    0
  end
  else begin
    Printf.printf "%d failure(s)\n%!" total;
    1
  end

let seeds_arg =
  Arg.(
    value & opt int 100
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of schedule-fuzz seeds to sweep.")

let start_arg =
  Arg.(
    value & opt int 0
    & info [ "start-seed" ] ~docv:"S" ~doc:"First schedule-fuzz seed.")

let max_p_arg =
  Arg.(
    value & opt int 8
    & info [ "max-p" ] ~docv:"P" ~doc:"Largest simulated worker count.")

let max_size_arg =
  Arg.(
    value & opt int 60
    & info [ "max-size" ] ~docv:"N"
        ~doc:"Largest workload size (data-structure nodes).")

let bound_factor_arg =
  Arg.(
    value & opt float 16.0
    & info [ "bound-factor" ] ~docv:"F"
        ~doc:"Constant factor allowed over the Theorem-1 expression.")

let time_budget_arg =
  Arg.(
    value & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECS"
        ~doc:"Stop the sweep after this many seconds (checked between cases).")

let conformance_ops_arg =
  Arg.(
    value & opt int 96
    & info [ "conformance-ops" ] ~docv:"N"
        ~doc:"Operations per conformance script.")

let skip_conformance_arg =
  Arg.(value & flag & info [ "skip-conformance" ] ~doc:"Schedule fuzzing only.")

let skip_shard_conformance_arg =
  Arg.(
    value & flag
    & info [ "skip-shard-conformance" ]
        ~doc:"Skip the sharded (multi-instance) conformance pass.")

let skip_schedule_arg =
  Arg.(value & flag & info [ "skip-schedule" ] ~doc:"Conformance only.")

let shard_k_arg =
  Arg.(
    value & opt int 0
    & info [ "shard-k" ] ~docv:"K"
        ~doc:
          "Force every schedule-fuzz case to K shards (0 = the generator's \
           own rotation).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every case.")

let cmd =
  let doc =
    "fuzz the BATCHER scheduler and batched structures against oracles"
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const main $ seeds_arg $ start_arg $ max_p_arg $ max_size_arg
      $ bound_factor_arg $ time_budget_arg $ conformance_ops_arg
      $ skip_conformance_arg $ skip_shard_conformance_arg $ skip_schedule_arg
      $ shard_k_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)
